//! Differential suite for the sharded router: a [`ShardedIndex`] must be
//! observationally identical to one [`OnlineIndex`] over the same corpus.
//!
//! Pinned here, on both key backends, for shard counts {1, 2, 7} and both
//! partitioning policies:
//!
//! 1. **Byte-identical answers** — for every request shape (full, top-k,
//!    count-only, streaming) and every `τ ≤ τ_max`, the router's matches,
//!    counts, and completions equal the single index's, and — for plain
//!    unbudgeted requests — so do the summed `ExecStats` (shards
//!    partition the candidate space, so the work totals are exactly the
//!    single index's).
//! 2. **Mutations agree** — interleaved inserts and removes leave the
//!    router and the single index answering identically (global ids are
//!    assigned in the same dense order).
//! 3. **Budgets hold across shards** — a per-request cap is split across
//!    the fan-out and the merged work never exceeds it; a batch-level
//!    pool is shared atomically and the batch-wide total stays ≤ cap.
//! 4. **Edge cases degrade, never hang** — zero shards, empty shards,
//!    and queries whose length band holds no strings all produce
//!    `Complete` empty outcomes, including on the streaming path (where
//!    a saturated or dropped caller must abort, not deadlock).
//! 5. **Persistence round-trips** — `save_sharded`/`load_sharded`
//!    restores a router that answers byte-identically.

use std::sync::Arc;

use passjoin_online::{
    BatchBudget, CollectSink, CountSink, ExecBudget, KeyBackend, Match, OnlineIndex, QueryOutcome,
    Queryable, SearchRequest, ShardBy, ShardedIndex,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TAU_MAX: usize = 2;
const SHARD_COUNTS: [usize; 3] = [1, 2, 7];
const BACKENDS: [KeyBackend; 2] = [KeyBackend::Owned, KeyBackend::Interned];
const POLICIES: [ShardBy; 2] = [ShardBy::Len, ShardBy::Hash];

fn corpus(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let len = rng.gen_range(0..24);
            (0..len).map(|_| rng.gen_range(b'a'..=b'f')).collect()
        })
        .collect()
}

fn single(strings: &[Vec<u8>], backend: KeyBackend) -> OnlineIndex {
    OnlineIndex::builder(TAU_MAX)
        .key_backend(backend)
        .build_from(strings.iter())
}

fn sharded(
    strings: &[Vec<u8>],
    backend: KeyBackend,
    shards: usize,
    shard_by: ShardBy,
) -> ShardedIndex {
    ShardedIndex::builder(TAU_MAX)
        .shards(shards)
        .shard_by(shard_by)
        .key_backend(backend)
        .build_from(strings.iter())
}

/// Streams one request, returning the emissions and the outcome.
fn stream(source: &dyn Queryable, req: &SearchRequest) -> (Vec<Match>, QueryOutcome) {
    let mut emitted = Vec::new();
    let outcome = {
        let mut sink = CollectSink::new(&mut emitted);
        source.search_streaming(req, &mut sink)
    };
    (emitted, outcome)
}

/// Contract 1: every shape, every τ, byte-identical to the single index.
fn assert_router_equals_single(
    index: &OnlineIndex,
    router: &ShardedIndex,
    queries: &[Vec<u8>],
    label: &str,
) {
    assert_eq!(router.len(), index.len(), "{label}: corpus size");
    for tau in 0..=TAU_MAX {
        for q in queries {
            let req = SearchRequest::borrowed(q, tau);
            let expected = index.search(&req);
            let got = router.search(&req);
            assert_eq!(*got.matches, *expected.matches, "{label}: full τ={tau}");
            assert_eq!(got.count, expected.count, "{label}: full count");
            assert!(
                got.completion.is_complete(),
                "{label}: unbudgeted completes"
            );
            assert_eq!(
                got.stats, expected.stats,
                "{label}: shards partition the work exactly (τ={tau})"
            );

            for k in [0usize, 1, 3, expected.count, expected.count + 2] {
                let kreq = req.clone().with_limit(k);
                let topk = router.search(&kreq);
                assert_eq!(
                    *topk.matches,
                    *index.search(&kreq).matches,
                    "{label}: top-{k} τ={tau}"
                );
            }

            let creq = req.clone().count_only();
            assert_eq!(
                router.search(&creq).count,
                index.search(&creq).count,
                "{label}: count τ={tau}"
            );

            // Streaming: multi-shard emission order is nondeterministic,
            // so compare as sets (sorted); the top-k stream is a flush of
            // the merged heap and stays exactly ordered.
            let (mut emitted, outcome) = stream(router, &req);
            emitted.sort_unstable();
            assert_eq!(emitted, *expected.matches, "{label}: stream τ={tau}");
            assert_eq!(outcome.count, expected.count);
            assert!(
                outcome.matches.is_empty(),
                "stream leaves matches in the sink"
            );
            let (emitted_k, _) = stream(router, &req.clone().with_limit(3));
            assert_eq!(
                emitted_k,
                *index.search(&req.clone().with_limit(3)).matches,
                "{label}: top-k stream is (d, id)-ordered"
            );
            let (emitted_c, outcome_c) = stream(router, &creq);
            assert!(emitted_c.is_empty(), "{label}: count stream emits nothing");
            assert_eq!(outcome_c.count, expected.count);
        }
    }

    // One mixed batch through search_batch, against the buffered truth.
    let reqs: Vec<SearchRequest> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| match i % 3 {
            0 => SearchRequest::borrowed(q, i % (TAU_MAX + 1)),
            1 => SearchRequest::borrowed(q, TAU_MAX).with_limit(2),
            _ => SearchRequest::borrowed(q, 1).count_only(),
        })
        .collect();
    let expected = index.search_batch(&reqs);
    let got = router.search_batch(&reqs);
    assert_eq!(got.outcomes.len(), expected.outcomes.len());
    for (i, (g, e)) in got.outcomes.iter().zip(&expected.outcomes).enumerate() {
        assert_eq!(*g.matches, *e.matches, "{label}: batch request {i}");
        assert_eq!(g.count, e.count, "{label}: batch count {i}");
    }
}

#[test]
fn router_equals_single_index_everywhere() {
    let strings = corpus(300, 41);
    let queries = corpus(40, 42);
    for backend in BACKENDS {
        let index = single(&strings, backend);
        for shards in SHARD_COUNTS {
            for policy in POLICIES {
                let router = sharded(&strings, backend, shards, policy);
                let label = format!("{backend:?}/{shards} shards/{policy:?}");
                assert_router_equals_single(&index, &router, &queries, &label);
            }
        }
    }
}

/// Contract 2: interleaved inserts and removes keep the two in lockstep
/// (the router assigns the same dense global ids).
#[test]
fn mutations_keep_router_and_single_in_lockstep() {
    let strings = corpus(120, 51);
    let extra = corpus(40, 52);
    let queries = corpus(20, 53);
    for shards in SHARD_COUNTS {
        let mut index = single(&strings, KeyBackend::Owned);
        let mut router = sharded(&strings, KeyBackend::Owned, shards, ShardBy::Len);
        for (i, s) in extra.iter().enumerate() {
            let (a, b) = (index.insert(s), router.insert(s));
            assert_eq!(a, b, "dense ids stay aligned");
            if i % 3 == 0 {
                let victim = (i * 7 % strings.len()) as u32;
                assert_eq!(index.remove(victim), router.remove(victim));
            }
        }
        for q in &queries {
            assert_eq!(
                router.matches(q, TAU_MAX),
                index.matches(q, TAU_MAX),
                "{shards} shards after mutations"
            );
        }
    }
}

/// Contract 3a: a per-request verification cap is split across the
/// fan-out; the merged work never exceeds it and a trip is reported.
#[test]
fn per_request_budgets_hold_across_shards() {
    let strings = corpus(300, 61);
    let queries = corpus(15, 62);
    let index = single(&strings, KeyBackend::Owned);
    for shards in SHARD_COUNTS {
        let router = sharded(&strings, KeyBackend::Owned, shards, ShardBy::Len);
        for q in &queries {
            let full = index.search(&SearchRequest::borrowed(q, TAU_MAX));
            let total = full.stats.verifications + full.stats.short_checked;
            for cap in [0, 1, total, total + 8] {
                let req = SearchRequest::borrowed(q, TAU_MAX)
                    .with_budget(ExecBudget::new().with_max_verifications(cap));
                let capped = router.search(&req);
                assert!(
                    capped.stats.verifications + capped.stats.short_checked <= cap,
                    "{shards} shards: cap {cap} is a hard ceiling"
                );
                assert!(
                    capped.matches.iter().all(|m| full.matches.contains(m)),
                    "{shards} shards: budgeted ⊆ unbudgeted"
                );
                if cap >= total {
                    // A cap covering the whole corpus's work covers every
                    // shard's share (splitting only rounds down by < k).
                    if capped.completion.is_complete() {
                        assert_eq!(capped.matches, full.matches, "untripped ⇒ exact");
                    }
                }
            }
        }
    }
}

/// Contract 3b: a batch-level pool is shared atomically across shards —
/// the batch-wide total stays within the cap.
#[test]
fn batch_pool_totals_stay_capped_across_shards() {
    let strings = corpus(300, 63);
    let queries = corpus(30, 64);
    let index = single(&strings, KeyBackend::Owned);
    let unlimited: Vec<SearchRequest> = queries
        .iter()
        .map(|q| SearchRequest::borrowed(q, TAU_MAX))
        .collect();
    let total: u64 = index
        .search_batch(&unlimited)
        .outcomes
        .iter()
        .map(|o| o.stats.verifications + o.stats.short_checked)
        .sum();
    assert!(total > 8, "corpus generates real work");

    for shards in SHARD_COUNTS {
        let router = sharded(&strings, KeyBackend::Owned, shards, ShardBy::Len);
        let cap = total / 2;
        let pool = BatchBudget::new(ExecBudget::new().with_max_verifications(cap));
        let reqs: Vec<SearchRequest> = queries
            .iter()
            .map(|q| SearchRequest::borrowed(q, TAU_MAX).with_batch_budget(&pool))
            .collect();
        let response = router.search_batch(&reqs);
        let spent: u64 = response
            .outcomes
            .iter()
            .map(|o| o.stats.verifications + o.stats.short_checked)
            .sum();
        assert!(
            spent <= cap,
            "{shards} shards: pool total {spent} ≤ cap {cap}"
        );
        assert!(
            response
                .outcomes
                .iter()
                .any(|o| !o.completion.is_complete()),
            "{shards} shards: half the work must truncate someone"
        );
    }
}

/// Contract 4: a zero-shard router answers everything with `Complete`
/// empty outcomes — buffered and streaming — instead of panicking.
#[test]
fn zero_shards_answer_empty_and_complete() {
    let router = ShardedIndex::builder(TAU_MAX).shards(0).build();
    assert_eq!(router.shard_count(), 0);
    assert_eq!(router.len(), 0);
    assert!(router.is_empty());

    let req = SearchRequest::new(b"anything", TAU_MAX);
    let outcome = router.search(&req);
    assert!(outcome.matches.is_empty());
    assert_eq!(outcome.count, 0);
    assert!(outcome.completion.is_complete());

    for shaped in [req.clone().with_limit(5), req.clone().count_only()] {
        let o = router.search(&shaped);
        assert_eq!(o.count, 0);
        assert!(o.completion.is_complete());
    }

    let (emitted, streamed) = stream(&router, &req);
    assert!(emitted.is_empty(), "zero shards stream nothing");
    assert!(streamed.completion.is_complete());

    let response = router.search_batch(&[req.clone(), req.clone().with_limit(1)]);
    assert!(response.outcomes.iter().all(|o| o.completion.is_complete()));
}

/// Contract 4: shards whose band holds no strings stay inert — the
/// skewed corpus leaves most bands empty, and answers still match.
#[test]
fn empty_shards_and_empty_bands_degrade_gracefully() {
    // Every string has length 7: under 7-way length banding, one band
    // holds the whole corpus and six are empty.
    let strings: Vec<Vec<u8>> = (0..50).map(|i| format!("str{i:04}").into_bytes()).collect();
    let index = single(&strings, KeyBackend::Owned);
    let router = sharded(&strings, KeyBackend::Owned, 7, ShardBy::Len);
    assert_eq!(router.len(), index.len());

    // In-band queries agree; far-out-of-band queries are empty/Complete.
    for q in [
        &b"str0001"[..],
        b"str9999",
        b"x",
        b"a very long query far outside every band",
    ] {
        let req = SearchRequest::borrowed(q, TAU_MAX);
        let expected = index.search(&req);
        let got = router.search(&req);
        assert_eq!(*got.matches, *expected.matches);
        assert!(got.completion.is_complete());
        let (mut emitted, _) = stream(&router, &req);
        emitted.sort_unstable();
        assert_eq!(emitted, *expected.matches);
    }

    // An empty router built for a length distribution it never saw.
    let empty = ShardedIndex::builder(TAU_MAX).shards(3).build();
    assert!(empty.is_empty());
    let (emitted, outcome) = stream(&empty, &SearchRequest::new(b"ghost", 1));
    assert!(emitted.is_empty());
    assert!(outcome.completion.is_complete());
}

/// Contract 4: a caller sink that saturates mid-stream aborts the
/// fan-out — bounded emissions, no deadlock on the channel.
#[test]
fn saturated_stream_callers_abort_the_fanout() {
    let strings = corpus(400, 71);
    let router = sharded(&strings, KeyBackend::Owned, 7, ShardBy::Len);
    // Find a query with plenty of matches.
    let q = strings
        .iter()
        .max_by_key(|s| router.matches(s, TAU_MAX).len())
        .unwrap();
    let full = router.matches(q, TAU_MAX).len();
    assert!(full >= 2, "need a match-heavy query");

    let mut sink = CountSink::capped(1);
    let outcome = router.search_streaming(&SearchRequest::borrowed(q, TAU_MAX), &mut sink);
    assert!(sink.count() >= 1, "the cap admits one push");
    assert!(
        sink.count() < full || full == 1,
        "saturation stopped the stream early"
    );
    assert!(outcome.matches.is_empty());
}

/// Contract 1, dyn form: a router over boxed snapshot shards (no band
/// information, full fan-out) still answers byte-identically.
#[test]
fn dyn_shards_from_snapshots_agree() {
    let strings = corpus(150, 81);
    let queries = corpus(20, 82);
    let index = single(&strings, KeyBackend::Owned);

    // Partition by hand: even ids left, odd ids right.
    let mut left = OnlineIndex::builder(TAU_MAX).build();
    let mut right = OnlineIndex::builder(TAU_MAX).build();
    let (mut left_ids, mut right_ids) = (Vec::new(), Vec::new());
    for (i, s) in strings.iter().enumerate() {
        if i % 2 == 0 {
            left.insert(s);
            left_ids.push(i as u32);
        } else {
            right.insert(s);
            right_ids.push(i as u32);
        }
    }
    let router = ShardedIndex::from_dyn_shards(
        vec![Box::new(left.snapshot()), Box::new(right.snapshot())],
        vec![left_ids, right_ids],
        TAU_MAX,
    );
    assert_eq!(router.len(), index.len());
    for q in &queries {
        for tau in 0..=TAU_MAX {
            assert_eq!(router.matches(q, tau), index.matches(q, tau));
        }
    }
}

/// Contract 5: save/load round-trips, for both policies, and the
/// restored router keeps answering byte-identically — and stays mutable.
#[test]
fn sharded_persistence_round_trips() {
    let dir = std::env::temp_dir().join(format!("passjoin-router-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let strings = corpus(200, 91);
    let queries = corpus(20, 92);
    for backend in BACKENDS {
        for policy in POLICIES {
            let mut router = sharded(&strings, backend, 4, policy);
            router.remove(3);
            let path = dir.join(format!("router-{backend:?}-{policy:?}.pj"));
            let bytes = router.save_sharded(&path).unwrap();
            assert!(bytes > 0);

            let mut restored = ShardedIndex::load_sharded(&path).unwrap();
            assert_eq!(restored.shard_count(), 4);
            assert_eq!(restored.shard_by(), policy);
            assert_eq!(restored.len(), router.len());
            assert_eq!(restored.epoch(), router.epoch());
            for q in &queries {
                assert_eq!(
                    restored.matches(q, TAU_MAX),
                    router.matches(q, TAU_MAX),
                    "{backend:?}/{policy:?} round-trip"
                );
            }
            // The restored router accepts further mutations.
            let id = restored.insert(b"post-restore insert");
            assert_eq!(id, router.insert(b"post-restore insert"));
            assert_eq!(
                restored.matches(b"post-restore insert", 0),
                router.matches(b"post-restore insert", 0)
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The router's metrics rollup: `passjoin_router_requests_total` counts
/// router requests, the fan-out counter equals the engine's
/// `passjoin_requests_total` (every dispatched sub-request executes on
/// its shard), and the per-shard counters sum to the fan-out.
#[test]
fn router_metrics_roll_up() {
    use passjoin_online::Registry;

    let registry = Arc::new(Registry::new());
    let strings = corpus(200, 95);
    let queries = corpus(25, 96);
    let router = ShardedIndex::builder(TAU_MAX)
        .shards(4)
        .key_backend(KeyBackend::Owned)
        .observability(Arc::clone(&registry))
        .build_from(strings.iter());

    for q in &queries {
        router.search(&SearchRequest::borrowed(q, TAU_MAX));
    }
    let reqs: Vec<SearchRequest> = queries
        .iter()
        .map(|q| SearchRequest::borrowed(q, 1))
        .collect();
    router.search_batch(&reqs);

    let get = |name: &str| registry.counter(name).get();
    assert_eq!(
        get("passjoin_router_requests_total"),
        2 * queries.len() as u64
    );
    assert_eq!(
        get("passjoin_router_fanout_total"),
        get("passjoin_requests_total"),
        "every dispatched sub-request executes on its shard"
    );
    let per_shard: u64 = (0..4)
        .map(|i| get(&format!("passjoin_router_shard{i}_requests_total")))
        .sum();
    assert_eq!(per_shard, get("passjoin_router_fanout_total"));
}

/// The router mirrors the engine's τ ceiling contract.
#[test]
#[should_panic(expected = "exceeds the index's τ_max")]
fn router_rejects_tau_above_ceiling() {
    let router = ShardedIndex::builder(1).shards(2).build_from(["a", "b"]);
    router.search(&SearchRequest::new(b"a", 2));
}
