//! Property suite for the streaming & budgeted query surface.
//!
//! Three contracts are pinned here, on both key backends, for every
//! `τ ≤ τ_max`, on random and planted corpora:
//!
//! 1. **Streaming ≡ buffered** — collecting `search_streaming`'s
//!    emissions yields exactly `search`'s matches for every request
//!    shape (plain emissions are in verification order and compare after
//!    an id sort; top-k emissions arrive already in `(distance, id)`
//!    order; count-only emits nothing), and the batch variant pushes the
//!    same matches into each request's own sink (requests may interleave
//!    across worker threads; each sink still sees exactly its request's
//!    matches).
//! 2. **Budgets are sound** — a budgeted result is always a subset of
//!    the unbudgeted one, the work counters never exceed the cap, and
//!    `Truncated` is reported **iff** work was actually skipped (a cap
//!    at or above the total work never trips and returns the exact
//!    answer).
//! 3. **The cache stays exact** — budget-tripped and streamed
//!    computations never populate the cache, while shaped requests are
//!    answered from a stored full result by sort-truncate/len
//!    derivation (pinned with cache counters).

use std::sync::Arc;

use passjoin_online::{
    CacheOutcome, CachePolicy, CollectSink, Completion, ExecBudget, KeyBackend, ManualTicks, Match,
    MatchSink, OnlineIndex, QueryOutcome, Queryable, SearchRequest, SearchResponse, TickSource,
    TruncationReason,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build(strings: &[Vec<u8>], tau_max: usize, backend: KeyBackend) -> OnlineIndex {
    OnlineIndex::builder(tau_max)
        .key_backend(backend)
        .build_from(strings.iter())
}

/// Runs one streaming request, returning its emissions and outcome.
fn collect_streaming(source: &dyn Queryable, req: &SearchRequest) -> (Vec<Match>, QueryOutcome) {
    let mut emitted = Vec::new();
    let outcome = {
        let mut sink = CollectSink::new(&mut emitted);
        source.search_streaming(req, &mut sink)
    };
    (emitted, outcome)
}

/// Edit-distance work one outcome performed (both verification lanes).
fn work(outcome: &QueryOutcome) -> u64 {
    outcome.stats.verifications + outcome.stats.short_checked
}

/// Contract 1, single-request form: streaming emissions ≡ buffered
/// matches for every shape, on the index and on a snapshot.
fn assert_streaming_equals_buffered(index: &OnlineIndex, queries: &[Vec<u8>]) {
    let snapshot = index.snapshot();
    for tau in 0..=index.tau_max() {
        for q in queries {
            let req = SearchRequest::borrowed(q, tau);
            let buffered = index.search(&req);

            let (mut emitted, outcome) = collect_streaming(index, &req);
            emitted.sort_unstable(); // plain emissions are verification-ordered
            assert_eq!(emitted, *buffered.matches, "plain streaming at tau={tau}");
            assert_eq!(outcome.count, buffered.count);
            assert_eq!(outcome.stats, buffered.stats, "same scan, same work");
            assert!(outcome.matches.is_empty(), "matches go to the sink only");
            assert!(outcome.completion.is_complete());

            let (mut via_snapshot, _) = collect_streaming(&snapshot, &req);
            via_snapshot.sort_unstable();
            assert_eq!(via_snapshot, *buffered.matches, "snapshot streaming");

            for k in [0usize, 1, 2, buffered.count, buffered.count + 3] {
                let kreq = req.clone().with_limit(k);
                let topk = index.search(&kreq);
                let (emitted_k, outcome_k) = collect_streaming(index, &kreq);
                // Top-k emission is the flush of the finished heap: the
                // buffered result, order included.
                assert_eq!(emitted_k, *topk.matches, "top-{k} streaming");
                assert_eq!(outcome_k.count, topk.matches.len());
            }

            let creq = req.clone().count_only();
            let counted = index.search(&creq);
            let (emitted_c, outcome_c) = collect_streaming(index, &creq);
            assert!(emitted_c.is_empty(), "count-only emits nothing");
            assert_eq!(outcome_c.count, counted.count);
        }
    }
}

/// Runs one batch-streaming call with a fresh `CollectSink` per request,
/// returning each request's emissions and the response.
fn collect_batch_streaming(
    source: &dyn Queryable,
    reqs: &[SearchRequest],
) -> (Vec<Vec<Match>>, SearchResponse) {
    let mut per_req: Vec<Vec<Match>> = vec![Vec::new(); reqs.len()];
    let response = {
        let mut sinks: Vec<CollectSink> = per_req.iter_mut().map(CollectSink::new).collect();
        let mut slots: Vec<&mut (dyn MatchSink + Send)> = sinks
            .iter_mut()
            .map(|s| s as &mut (dyn MatchSink + Send))
            .collect();
        source.search_batch_streaming(reqs, &mut slots)
    };
    (per_req, response)
}

/// Contract 1, batch form: each request's own sink receives exactly that
/// request's matches, equal to the buffered batch (requests may run on
/// worker threads, so no cross-request emission order is assumed).
fn assert_batch_streaming_equals_buffered(index: &OnlineIndex, queries: &[Vec<u8>], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let reqs: Vec<SearchRequest> = queries
        .iter()
        .map(|q| SearchRequest::borrowed(q, rng.gen_range(0..=index.tau_max())))
        .collect();
    let buffered = index.search_batch(&reqs);

    let (mut per_req, response) = collect_batch_streaming(index, &reqs);

    assert_eq!(response.outcomes.len(), buffered.outcomes.len());
    for (i, expected) in buffered.outcomes.iter().enumerate() {
        per_req[i].sort_unstable();
        assert_eq!(per_req[i], *expected.matches, "request {i}");
        assert_eq!(response.outcomes[i].count, expected.count);
        assert_eq!(response.outcomes[i].stats, expected.stats);
    }
}

/// Contract 2: budgeted ⊆ unbudgeted, caps are respected exactly, and
/// `Truncated` is reported iff the cap actually cut the scan short.
fn assert_budgets_are_sound(index: &OnlineIndex, queries: &[Vec<u8>]) {
    for tau in 0..=index.tau_max() {
        for q in queries {
            let plain = SearchRequest::borrowed(q, tau);
            let full = index.search(&plain);
            let total_verifications = work(&full);
            let total_candidates = full.stats.candidates;

            for cap in [0, 1, 2, total_verifications, total_verifications + 10] {
                let req = plain
                    .clone()
                    .with_budget(ExecBudget::new().with_max_verifications(cap));
                let capped = index.search(&req);
                assert!(
                    capped.matches.iter().all(|m| full.matches.contains(m)),
                    "budgeted result must be a subset (tau={tau}, cap={cap})"
                );
                assert!(work(&capped) <= cap, "cap is a hard ceiling");
                assert_eq!(
                    capped.completion.is_complete(),
                    cap >= total_verifications,
                    "Truncated iff work was skipped (tau={tau}, cap={cap}, total={total_verifications})"
                );
                match capped.completion {
                    Completion::Complete => {
                        assert_eq!(capped.matches, full.matches, "untripped ⇒ exact");
                        assert_eq!(capped.stats, full.stats);
                    }
                    Completion::Truncated { reason } => {
                        assert_eq!(reason, TruncationReason::VerificationCap);
                        assert_eq!(work(&capped), cap, "trips only after spending the cap");
                    }
                }

                // The same holds when the budget rides a streaming scan.
                let (mut emitted, streamed) = collect_streaming(index, &req);
                emitted.sort_unstable();
                assert_eq!(
                    emitted, *capped.matches,
                    "streamed budget ≡ buffered budget"
                );
                assert_eq!(streamed.completion, capped.completion);
                assert_eq!(streamed.stats, capped.stats);
            }

            for cap in [0, 1, total_candidates, total_candidates + 10] {
                let req = plain
                    .clone()
                    .with_budget(ExecBudget::new().with_max_candidates(cap));
                let capped = index.search(&req);
                assert!(capped.matches.iter().all(|m| full.matches.contains(m)));
                assert!(capped.stats.candidates <= cap);
                assert_eq!(
                    capped.completion.is_complete(),
                    cap >= total_candidates,
                    "candidate cap: Truncated iff work was skipped"
                );
                if let Completion::Truncated { reason } = capped.completion {
                    assert_eq!(reason, TruncationReason::CandidateCap);
                }
            }
        }
    }
}

fn dense_corpus() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..12),
        0..20,
    )
}

fn off_corpus_queries() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..16),
        1..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn streaming_equals_buffered_on_both_backends(
        strings in dense_corpus(),
        extra in off_corpus_queries(),
        tau_max in 1usize..4,
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let mut queries = strings.clone();
        queries.extend(extra);
        for backend in [KeyBackend::Owned, KeyBackend::Interned] {
            let index = build(&strings, tau_max, backend);
            assert_streaming_equals_buffered(&index, &queries);
            assert_batch_streaming_equals_buffered(&index, &queries, seed);
        }
    }

    #[test]
    fn budgets_are_sound_on_both_backends(
        strings in dense_corpus(),
        extra in off_corpus_queries(),
        tau_max in 1usize..4,
    ) {
        let mut queries = strings.clone();
        queries.extend(extra);
        for backend in [KeyBackend::Owned, KeyBackend::Interned] {
            let index = build(&strings, tau_max, backend);
            assert_budgets_are_sound(&index, &queries);
        }
    }

    #[test]
    fn tripped_budgets_never_pollute_the_cache(
        strings in dense_corpus(),
        tau_max in 1usize..4,
    ) {
        for backend in [KeyBackend::Owned, KeyBackend::Interned] {
            let index = build(&strings, tau_max, backend);
            for q in &strings {
                let cacheable = SearchRequest::borrowed(q, tau_max).with_cache(CachePolicy::Use);
                let tripped = index.search(
                    &cacheable.clone().with_budget(ExecBudget::new().with_max_verifications(0)),
                );
                if tripped.cache == CacheOutcome::Hit {
                    // A duplicate query already stored its full result; a
                    // hit needs no probing, so the budget cannot trip.
                    prop_assert!(tripped.completion.is_complete());
                    continue;
                }
                prop_assert_eq!(tripped.cache, CacheOutcome::Miss);
                if !tripped.completion.is_complete() {
                    // The truncated result must not have been stored: the
                    // next cacheable request recomputes (a miss)…
                    let full = index.search(&cacheable);
                    prop_assert_eq!(full.cache, CacheOutcome::Miss);
                    prop_assert!(full.completion.is_complete());
                    // …and only that complete result is served afterwards.
                    let hit = index.search(&cacheable);
                    prop_assert_eq!(hit.cache, CacheOutcome::Hit);
                    prop_assert_eq!(&*hit.matches, &*full.matches);
                }
            }
        }
    }
}

/// A planted corpus with near-duplicates per base string — match-heavy,
/// so budgets and shapes have real work to cut.
fn heavy_corpus(n: usize, dups: usize, seed: u64) -> Vec<Vec<u8>> {
    let base = datagen::DatasetSpec::new(datagen::DatasetKind::Author, n)
        .with_seed(seed)
        .generate();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5A5A);
    let mut strings = Vec::with_capacity(n * (dups + 1));
    for s in base {
        for _ in 0..dups {
            strings.push(datagen::mutate(&s, rng.gen_range(1..=2), &mut rng));
        }
        strings.push(s);
    }
    strings
}

#[test]
fn planted_corpus_streams_and_budgets_on_both_backends() {
    let strings = heavy_corpus(120, 1, 11);
    let queries: Vec<Vec<u8>> = strings.iter().step_by(5).cloned().collect();
    for backend in [KeyBackend::Owned, KeyBackend::Interned] {
        let index = build(&strings, 2, backend);
        assert_streaming_equals_buffered(&index, &queries);
        assert_batch_streaming_equals_buffered(&index, &queries, 23);
        assert_budgets_are_sound(&index, &queries[..8.min(queries.len())]);
    }
}

#[test]
fn verification_cap_observably_reduces_work() {
    // Acceptance: a verification-capped request demonstrably performs
    // fewer verifications than the unbudgeted one and reports Truncated.
    let strings = heavy_corpus(200, 3, 7);
    let index = OnlineIndex::from_strings(strings.iter(), 2);
    // Pick the heaviest query so the cap has real work to cut.
    let (q, full) = strings
        .iter()
        .take(40)
        .map(|s| {
            let outcome = index.search(&SearchRequest::borrowed(s, 2));
            (s.as_slice(), outcome)
        })
        .max_by_key(|(_, outcome)| work(outcome))
        .expect("non-empty corpus");
    assert!(
        work(&full) > 2,
        "corpus must be match-heavy: {} work units",
        work(&full)
    );
    let cap = work(&full) / 2;
    let capped = index.search(
        &SearchRequest::borrowed(q, 2).with_budget(ExecBudget::new().with_max_verifications(cap)),
    );
    assert_eq!(
        capped.completion,
        Completion::Truncated {
            reason: TruncationReason::VerificationCap
        }
    );
    assert!(work(&capped) < work(&full));
    assert!(capped.matches.len() <= full.matches.len());
}

#[test]
fn streamed_computations_never_enter_the_cache() {
    let strings = heavy_corpus(60, 1, 3);
    let index = OnlineIndex::from_strings(strings.iter(), 2);
    let q = strings[0].as_slice();
    let req = SearchRequest::borrowed(q, 2).with_cache(CachePolicy::Use);

    // Streaming computes but never stores…
    let (_, first) = collect_streaming(&index, &req);
    assert_eq!(first.cache, CacheOutcome::Miss);
    let (_, second) = collect_streaming(&index, &req);
    assert_eq!(second.cache, CacheOutcome::Miss, "nothing was stored");

    // …a buffered request stores, and streaming then replays the hit in
    // the cached (id) order.
    let buffered = index.search(&req);
    assert_eq!(buffered.cache, CacheOutcome::Miss);
    let (emitted, hit) = collect_streaming(&index, &req);
    assert_eq!(hit.cache, CacheOutcome::Hit);
    assert_eq!(hit.stats, Default::default(), "hits probe nothing");
    assert_eq!(emitted, *buffered.matches, "replay is already id-ordered");
}

#[test]
fn cached_full_results_answer_shaped_requests() {
    let strings = heavy_corpus(80, 2, 5);
    let index = OnlineIndex::from_strings(strings.iter(), 2);
    // Pick a query with enough matches for the top-k truncation to bite.
    let q = strings
        .iter()
        .take(30)
        .max_by_key(|s| index.search(&SearchRequest::borrowed(s, 2)).count)
        .expect("non-empty corpus")
        .as_slice();
    let plain = SearchRequest::borrowed(q, 2).with_cache(CachePolicy::Use);

    // Reference shaped answers, computed cold (cache bypassed).
    let topk_ref = index.search(&SearchRequest::borrowed(q, 2).with_limit(3));
    let count_ref = index.search(&SearchRequest::borrowed(q, 2).count_only());
    assert!(count_ref.count >= 3, "corpus must be match-heavy");

    // Shaped requests with Use consult the cache but never seed it.
    let miss = index.search(&plain.clone().with_limit(3));
    assert_eq!(miss.cache, CacheOutcome::Miss);
    let still_miss = index.search(&plain.clone().with_limit(3));
    assert_eq!(
        still_miss.cache,
        CacheOutcome::Miss,
        "shaped results are never stored"
    );

    // A plain request stores the full result; every shape then derives
    // from it without probing.
    assert_eq!(index.search(&plain).cache, CacheOutcome::Miss);
    let before = index.cache_stats();

    let topk_hit = index.search(&plain.clone().with_limit(3));
    assert_eq!(topk_hit.cache, CacheOutcome::Hit);
    assert_eq!(
        topk_hit.stats,
        Default::default(),
        "derivation probes nothing"
    );
    assert_eq!(
        *topk_hit.matches, *topk_ref.matches,
        "sort-truncate derivation"
    );

    let count_hit = index.search(&plain.clone().count_only());
    assert_eq!(count_hit.cache, CacheOutcome::Hit);
    assert_eq!(count_hit.count, count_ref.count, "len derivation");
    assert!(count_hit.matches.is_empty());

    let capped_hit = index.search(&plain.clone().count_only().with_limit(2));
    assert_eq!(capped_hit.cache, CacheOutcome::Hit);
    assert_eq!(
        capped_hit.count,
        count_ref.count.min(2),
        "capped len derivation"
    );

    // Pin the counters: three derivations = three more cache hits, no
    // further misses.
    let after = index.cache_stats();
    assert_eq!(after.hits, before.hits + 3);
    assert_eq!(after.misses, before.misses);
}

#[test]
fn deadlines_are_deterministic_via_manual_ticks() {
    let strings = heavy_corpus(60, 1, 9);
    let index = OnlineIndex::from_strings(strings.iter(), 2);
    let q = strings[0].as_slice();
    let full = index.search(&SearchRequest::borrowed(q, 2));
    assert!(work(&full) > 0, "query must have work to cut");

    let clock = Arc::new(ManualTicks::new());
    let source: Arc<dyn TickSource> = clock.clone();
    let budget = ExecBudget::new().with_deadline(source, 1);

    // Tick 0 < 1: the deadline never fires; the answer is exact.
    let before = index.search(&SearchRequest::borrowed(q, 2).with_budget(budget.clone()));
    assert!(before.completion.is_complete());
    assert_eq!(before.matches, full.matches);

    // Tick 1 ≥ 1: the deadline fires before the first verification.
    clock.advance(1);
    let expired = index.search(&SearchRequest::borrowed(q, 2).with_budget(budget));
    assert_eq!(
        expired.completion,
        Completion::Truncated {
            reason: TruncationReason::Deadline
        }
    );
    assert_eq!(work(&expired), 0, "no verification ran past the deadline");
    assert!(expired.matches.is_empty());
}

#[test]
fn caller_sinks_steer_streaming_scans() {
    // A saturating caller sink must stop the scan early — the streaming
    // boundary carries the full MatchSink steering contract, not just
    // push.
    struct FirstOnly {
        got: Option<Match>,
    }
    impl passjoin_online::MatchSink for FirstOnly {
        fn push(&mut self, id: u32, dist: usize) {
            assert!(self.got.is_none(), "saturated sink must not be pushed to");
            self.got = Some((id, dist));
        }
        fn saturated(&self) -> bool {
            self.got.is_some()
        }
    }

    let strings = heavy_corpus(100, 2, 13);
    let index = OnlineIndex::from_strings(strings.iter(), 2);
    let q = strings[0].as_slice();
    let full = index.search(&SearchRequest::borrowed(q, 2));
    assert!(full.count > 1, "needs more than one match");

    let mut sink = FirstOnly { got: None };
    let outcome = index.search_streaming(&SearchRequest::borrowed(q, 2), &mut sink);
    assert_eq!(outcome.count, 1);
    assert!(
        outcome.completion.is_complete(),
        "caller saturation is not a budget trip"
    );
    assert!(work(&outcome) <= work(&full));
    let got = sink.got.expect("one match was emitted");
    assert!(full.matches.contains(&got));
}

/// The work one whole response performed (both verification lanes).
fn batch_work(outcomes: &[QueryOutcome]) -> u64 {
    outcomes.iter().map(work).sum()
}

#[test]
fn batch_budget_caps_total_work_across_the_batch() {
    use passjoin_online::{BatchBudget, Parallelism};

    let strings = heavy_corpus(150, 2, 17);
    let queries: Vec<Vec<u8>> = strings.iter().step_by(7).cloned().collect();
    for backend in [KeyBackend::Owned, KeyBackend::Interned] {
        let index = build(&strings, 2, backend);
        let unlimited: Vec<SearchRequest> = queries
            .iter()
            .map(|q| SearchRequest::borrowed(q, 2))
            .collect();
        let full = index.search_batch(&unlimited);
        let total = batch_work(&full.outcomes);
        assert!(total > 4, "corpus must be match-heavy: {total} work units");

        for (cap, parallelism) in [
            (0, Parallelism::Serial),
            (total / 2, Parallelism::Serial),
            (total / 2, Parallelism::Auto), // atomics keep the cap under races
            (total, Parallelism::Serial),
            (total + 10, Parallelism::Auto),
        ] {
            let shared = BatchBudget::new(ExecBudget::new().with_max_verifications(cap));
            let reqs: Vec<SearchRequest> = queries
                .iter()
                .map(|q| {
                    SearchRequest::borrowed(q, 2)
                        .with_batch_budget(&shared)
                        .with_parallelism(parallelism)
                })
                .collect();
            let capped = index.search_batch(&reqs);
            assert!(
                batch_work(&capped.outcomes) <= cap,
                "batch total is a hard ceiling (cap={cap})"
            );
            // Truncation is reported per request, with the pool's reason.
            for (i, outcome) in capped.outcomes.iter().enumerate() {
                assert!(
                    outcome
                        .matches
                        .iter()
                        .all(|m| full.outcomes[i].matches.contains(m)),
                    "pooled result is a subset (request {i})"
                );
                if let Completion::Truncated { reason } = outcome.completion {
                    assert_eq!(reason, TruncationReason::VerificationCap);
                }
            }
            let tripped = capped
                .outcomes
                .iter()
                .filter(|o| !o.completion.is_complete())
                .count();
            if cap >= total {
                assert_eq!(tripped, 0, "a cap covering the batch never trips");
                assert_eq!(
                    batch_work(&capped.outcomes),
                    total,
                    "uncut batch does the full work"
                );
            } else {
                assert!(tripped > 0, "an undersized cap trips some request");
            }
        }
    }
}

#[test]
fn batch_budget_candidate_pool_caps_scans() {
    use passjoin_online::BatchBudget;

    let strings = heavy_corpus(120, 2, 29);
    let queries: Vec<Vec<u8>> = strings.iter().step_by(9).cloned().collect();
    let index = OnlineIndex::from_strings(strings.iter(), 2);
    let unlimited: Vec<SearchRequest> = queries
        .iter()
        .map(|q| SearchRequest::borrowed(q, 2))
        .collect();
    let total: u64 = index
        .search_batch(&unlimited)
        .outcomes
        .iter()
        .map(|o| o.stats.candidates)
        .sum();
    assert!(total > 4, "needs real candidate traffic");

    let cap = total / 2;
    let shared = BatchBudget::new(ExecBudget::new().with_max_candidates(cap));
    let reqs: Vec<SearchRequest> = queries
        .iter()
        .map(|q| SearchRequest::borrowed(q, 2).with_batch_budget(&shared))
        .collect();
    let capped = index.search_batch(&reqs);
    let scanned: u64 = capped.outcomes.iter().map(|o| o.stats.candidates).sum();
    assert!(scanned <= cap, "pooled candidate cap holds batch-wide");
    assert!(capped.outcomes.iter().any(|o| matches!(
        o.completion,
        Completion::Truncated {
            reason: TruncationReason::CandidateCap
        }
    )));
}

#[test]
fn batch_budget_deadline_is_batch_wide() {
    use passjoin_online::BatchBudget;

    let strings = heavy_corpus(80, 1, 31);
    let queries: Vec<Vec<u8>> = strings.iter().step_by(11).cloned().collect();
    let index = OnlineIndex::from_strings(strings.iter(), 2);
    let clock: Arc<dyn TickSource> = Arc::new(ManualTicks::new());
    // Already-expired deadline: every request that would do work trips.
    let shared = BatchBudget::new(ExecBudget::new().with_deadline(Arc::clone(&clock), 0));
    let reqs: Vec<SearchRequest> = queries
        .iter()
        .map(|q| SearchRequest::borrowed(q, 2).with_batch_budget(&shared))
        .collect();
    let response = index.search_batch(&reqs);
    assert_eq!(
        batch_work(&response.outcomes),
        0,
        "no work past the deadline"
    );
    for outcome in &response.outcomes {
        assert_eq!(
            outcome.completion,
            Completion::Truncated {
                reason: TruncationReason::Deadline
            }
        );
        assert!(outcome.matches.is_empty());
    }
}

#[test]
fn batch_budget_composes_with_per_request_budgets() {
    use passjoin_online::BatchBudget;

    let strings = heavy_corpus(150, 2, 37);
    let index = OnlineIndex::from_strings(strings.iter(), 2);
    let (q, full) = strings
        .iter()
        .take(40)
        .map(|s| (s.as_slice(), index.search(&SearchRequest::borrowed(s, 2))))
        .max_by_key(|(_, o)| work(o))
        .expect("non-empty corpus");
    assert!(work(&full) > 2, "needs real work to cut");

    // A roomy pool with a tight per-request budget: the request budget
    // trips (and takes precedence in the reported reason).
    let roomy = BatchBudget::new(ExecBudget::new().with_max_verifications(work(&full) * 10));
    let tight = index.search(
        &SearchRequest::borrowed(q, 2)
            .with_batch_budget(&roomy)
            .with_budget(ExecBudget::new().with_max_verifications(1)),
    );
    assert_eq!(
        tight.completion,
        Completion::Truncated {
            reason: TruncationReason::VerificationCap
        }
    );
    assert!(work(&tight) <= 1);

    // A tight pool with a roomy per-request budget: the pool trips.
    let dry = BatchBudget::new(ExecBudget::new().with_max_verifications(1));
    let pooled = index.search(
        &SearchRequest::borrowed(q, 2)
            .with_batch_budget(&dry)
            .with_budget(ExecBudget::new().with_max_verifications(work(&full) * 10)),
    );
    assert_eq!(
        pooled.completion,
        Completion::Truncated {
            reason: TruncationReason::VerificationCap
        }
    );
    assert!(work(&pooled) <= 1);
}

#[test]
fn pool_truncated_results_never_enter_the_cache() {
    use passjoin_online::BatchBudget;

    let strings = heavy_corpus(100, 2, 41);
    let index = OnlineIndex::from_strings(strings.iter(), 2);
    let (q, full) = strings
        .iter()
        .take(30)
        .map(|s| (s.as_slice(), index.search(&SearchRequest::borrowed(s, 2))))
        .max_by_key(|(_, o)| work(o))
        .expect("non-empty corpus");
    assert!(work(&full) > 1);

    let dry = BatchBudget::new(ExecBudget::new().with_max_verifications(0));
    let truncated = index.search(
        &SearchRequest::borrowed(q, 2)
            .with_batch_budget(&dry)
            .with_cache(CachePolicy::Use),
    );
    assert!(!truncated.completion.is_complete());
    assert_eq!(truncated.cache, CacheOutcome::Miss);

    // The next cached request recomputes: the truncated result was not
    // stored as the full answer.
    let again = index.search(&SearchRequest::borrowed(q, 2).with_cache(CachePolicy::Use));
    assert_eq!(again.cache, CacheOutcome::Miss, "nothing was cached");
    assert_eq!(again.matches, full.matches);
}

#[test]
fn streamed_batches_honour_the_shared_pool() {
    use passjoin_online::BatchBudget;

    let strings = heavy_corpus(120, 2, 43);
    let queries: Vec<Vec<u8>> = strings.iter().step_by(8).cloned().collect();
    let index = OnlineIndex::from_strings(strings.iter(), 2);
    let unlimited: Vec<SearchRequest> = queries
        .iter()
        .map(|q| SearchRequest::borrowed(q, 2))
        .collect();
    let total = batch_work(&index.search_batch(&unlimited).outcomes);
    assert!(total > 4);

    let cap = total / 2;
    let shared = BatchBudget::new(ExecBudget::new().with_max_verifications(cap));
    let reqs: Vec<SearchRequest> = queries
        .iter()
        .map(|q| SearchRequest::borrowed(q, 2).with_batch_budget(&shared))
        .collect();
    let (per_req, response) = collect_batch_streaming(&index, &reqs);
    assert!(
        batch_work(&response.outcomes) <= cap,
        "streamed batch total is capped too"
    );
    assert!(response
        .outcomes
        .iter()
        .any(|o| !o.completion.is_complete()));
    assert_eq!(
        per_req.iter().map(Vec::len).sum::<usize>(),
        response.outcomes.iter().map(|o| o.count).sum::<usize>()
    );
}
