//! Temporary review fuzz: external (non-corpus) queries vs brute force.

use passjoin_online::OnlineIndex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rand_string(rng: &mut StdRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..=max_len);
    (0..len).map(|_| rng.gen_range(b'a'..=b'c')).collect()
}

#[test]
fn external_queries_match_brute_force() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for round in 0..300 {
        let tau_max = rng.gen_range(1..=4);
        let n = rng.gen_range(0..30);
        let strings: Vec<Vec<u8>> = (0..n).map(|_| rand_string(&mut rng, 14)).collect();
        let index = OnlineIndex::from_strings(strings.iter(), tau_max);
        for _ in 0..20 {
            let q = rand_string(&mut rng, 16);
            let tau = rng.gen_range(0..=tau_max);
            let mut expected: Vec<(u32, usize)> = strings
                .iter()
                .enumerate()
                .filter_map(|(i, s)| {
                    let d = editdist::edit_distance(s, &q);
                    (d <= tau).then_some((i as u32, d))
                })
                .collect();
            expected.sort_unstable();
            assert_eq!(
                index.query(&q, tau),
                expected,
                "round {round} tau={tau} tau_max={tau_max} q={:?} corpus={:?}",
                String::from_utf8_lossy(&q),
                strings.len()
            );
        }
    }
}
