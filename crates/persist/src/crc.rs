//! CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
//! guarding each snapshot section. Hand-rolled because the environment has
//! no crates.io access; table-driven, one shift-free lookup per byte.
//!
//! CRC32 detects all single-bit errors and all burst errors up to 32 bits
//! within a section, which is exactly the corruption model the snapshot
//! loader defends against (torn writes, bit rot, truncated copies).

/// The standard reflected polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Slice-by-8 lookup tables: `TABLES[0]` is the classic byte-at-a-time
/// table; `TABLES[k]` advances a byte through `k` further zero bytes, so
/// eight table lookups retire eight input bytes per iteration (the CRC of
/// a multi-megabyte string arena sits on the load path — a byte-at-a-time
/// loop would cost as much as the index reconstruction it guards).
const TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

/// The CRC32 of `bytes` (initial value `0xFFFF_FFFF`, final XOR-out —
/// byte-compatible with `zlib`'s `crc32`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[..4].try_into().unwrap()) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..].try_into().unwrap());
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from the zlib crc32 implementation.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn slice_by_8_equals_bytewise() {
        // Cross-check the fast path against the plain table walk on every
        // length that exercises the chunk/remainder split.
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 31 % 251) as u8).collect();
        for len in 0..data.len() {
            let bytes = &data[..len];
            let mut reference = u32::MAX;
            for &b in bytes {
                reference =
                    (reference >> 8) ^ TABLES[0][((reference ^ u32::from(b)) & 0xFF) as usize];
            }
            assert_eq!(crc32(bytes), !reference, "len {len}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"pass-join snapshot section payload".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "byte {byte} bit {bit}");
            }
        }
    }
}
