//! Codec for incremental delta checkpoints (snapshot format v3).
//!
//! A delta file records the mutations applied to an index since a **base
//! snapshot** (or since the previous delta in a chain): a compact ordered
//! log of inserts and removes, replayable onto the loaded base to recover
//! the exact live state. It shares the snapshot container — same magic,
//! version, section table, and per-section CRC32 — but carries its own
//! two sections and none of a full snapshot's, so the two kinds can never
//! be confused by a loader:
//!
//! ```text
//! SEC_DELTA_META (20):
//!   tau_max: u64        — must equal the base index's τ_max
//!   base_epoch: u64     — the epoch the log starts from
//!   end_epoch: u64      — base_epoch + n_ops (epochs advance by 1 per op)
//!   base_universe: u64  — string-table size before replay
//!   end_universe: u64   — string-table size after replay
//!   n_ops: u64
//!
//! SEC_DELTA_OPS (21): n_ops ×
//!   kind: u8            — 0 = insert, 1 = remove
//!   insert: id u32 (the id the insert was assigned), len u32, bytes
//!   remove: id u32
//! ```
//!
//! Recording the *assigned* id with each insert makes replay verifiable:
//! the base index must hand back the same id, or the chain does not
//! belong to this base and replay aborts instead of silently diverging.
//! Chain placement on disk (`<base>.delta-1`, `.delta-2`, …) and replay
//! itself live in `passjoin-store`; this module only owns the bytes.

use sj_common::StringId;

use crate::error::PersistError;
use crate::format::{Cursor, SnapshotFile, SnapshotWriter};

/// Section id: delta checkpoint metadata.
pub const SEC_DELTA_META: u32 = 20;
/// Section id: the delta operation log.
pub const SEC_DELTA_OPS: u32 = 21;

/// Delta checkpoint metadata — the replay contract between a base
/// snapshot and one log file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaMeta {
    /// τ_max of the index the log applies to.
    pub tau_max: u64,
    /// Mutation epoch the log starts from (the base's, or the previous
    /// delta's `end_epoch`).
    pub base_epoch: u64,
    /// Mutation epoch after replay: `base_epoch + n_ops`.
    pub end_epoch: u64,
    /// String-table size (`universe`) before replay.
    pub base_universe: u64,
    /// String-table size after replay.
    pub end_universe: u64,
}

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// `insert(bytes)` that was assigned `id`.
    Insert {
        /// The id the insert returned; replay must reproduce it.
        id: StringId,
        /// The inserted string.
        bytes: Vec<u8>,
    },
    /// `remove(id)` that removed a live string.
    Remove {
        /// The removed id.
        id: StringId,
    },
}

const KIND_INSERT: u8 = 0;
const KIND_REMOVE: u8 = 1;

/// Builds a [`SnapshotWriter`] holding one delta checkpoint; save it with
/// [`SnapshotWriter::save`] for the same crash-atomic rename the full
/// snapshots get.
pub fn delta_writer(meta: &DeltaMeta, ops: &[DeltaOp]) -> SnapshotWriter {
    let mut payload = Vec::with_capacity(48);
    for v in [
        meta.tau_max,
        meta.base_epoch,
        meta.end_epoch,
        meta.base_universe,
        meta.end_universe,
        ops.len() as u64,
    ] {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    let mut log = Vec::new();
    for op in ops {
        match op {
            DeltaOp::Insert { id, bytes } => {
                log.push(KIND_INSERT);
                log.extend_from_slice(&id.to_le_bytes());
                log.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                log.extend_from_slice(bytes);
            }
            DeltaOp::Remove { id } => {
                log.push(KIND_REMOVE);
                log.extend_from_slice(&id.to_le_bytes());
            }
        }
    }
    let mut writer = SnapshotWriter::new();
    writer.section(SEC_DELTA_META, payload);
    writer.section(SEC_DELTA_OPS, log);
    writer
}

/// Decodes a delta checkpoint, re-validating every structural promise:
/// the op log must parse exactly, op counts and epochs must agree
/// (`end_epoch − base_epoch = n_ops`), and the universe delta must match
/// the number of inserts (inserts append ids; removes never shrink the
/// table). Lies that survive the CRCs are rejected here.
pub fn read_delta(file: &SnapshotFile) -> Result<(DeltaMeta, Vec<DeltaOp>), PersistError> {
    let corrupt = |context: &'static str| PersistError::Corrupt { context };

    let mut cursor = Cursor::new(file.section(SEC_DELTA_META)?, "delta metadata section");
    let meta = DeltaMeta {
        tau_max: cursor.u64()?,
        base_epoch: cursor.u64()?,
        end_epoch: cursor.u64()?,
        base_universe: cursor.u64()?,
        end_universe: cursor.u64()?,
    };
    let n_ops = cursor.u64()?;
    cursor.finish()?;

    if meta.end_epoch.checked_sub(meta.base_epoch) != Some(n_ops) {
        return Err(corrupt("delta epochs disagree with the op count"));
    }

    let log = file.section(SEC_DELTA_OPS)?;
    let mut cursor = Cursor::new(log, "delta op log section");
    // A hostile n_ops must not size an allocation; the log length bounds
    // the real count (every op is at least 5 bytes).
    let mut ops = Vec::with_capacity((n_ops as usize).min(log.len() / 5 + 1));
    let mut inserts = 0u64;
    let mut next_id = meta.base_universe;
    for _ in 0..n_ops {
        let kind = cursor.bytes(1)?[0];
        let id: StringId = cursor.u32()?;
        match kind {
            KIND_INSERT => {
                // Ids are assigned densely at the end of the table, so the
                // recorded id is fully determined by the running universe.
                if u64::from(id) != next_id {
                    return Err(corrupt("delta insert id breaks the id sequence"));
                }
                next_id += 1;
                inserts += 1;
                let len = cursor.u32()? as usize;
                let bytes = cursor.bytes(len)?.to_vec();
                ops.push(DeltaOp::Insert { id, bytes });
            }
            KIND_REMOVE => {
                if u64::from(id) >= next_id {
                    return Err(corrupt("delta remove id exceeds the string table"));
                }
                ops.push(DeltaOp::Remove { id });
            }
            _ => return Err(corrupt("unknown delta op kind")),
        }
    }
    cursor.finish()?;

    if meta.base_universe.checked_add(inserts) != Some(meta.end_universe) {
        return Err(corrupt("delta universe delta disagrees with the inserts"));
    }
    Ok((meta, ops))
}

/// True when `file` is a delta checkpoint rather than a full snapshot.
pub fn is_delta(file: &SnapshotFile) -> bool {
    file.section_ids().any(|id| id == SEC_DELTA_META)
}
