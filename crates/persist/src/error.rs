//! The typed failure modes of snapshot persistence.

use std::fmt;

/// Why a snapshot could not be written or read back.
///
/// Every load-path failure is typed and recoverable — a corrupt or
/// incompatible file is reported, never panicked on — so callers (the CLI,
/// a serving process deciding whether to fall back to a rebuild) can react
/// to the *kind* of failure.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic — it is not a
    /// snapshot at all (or the header was destroyed).
    BadMagic {
        /// The first bytes actually found.
        found: [u8; 8],
    },
    /// The file is a snapshot, but of a format revision this build does
    /// not understand. Any layout change bumps [`crate::FORMAT_VERSION`];
    /// loaders read [`crate::MIN_SUPPORTED_VERSION`]`..=`the current one.
    UnsupportedVersion {
        /// The version recorded in the file.
        found: u32,
    },
    /// The file ends before the structure it promises (header, section
    /// table, or a section's payload).
    Truncated {
        /// Which structure was cut short.
        context: &'static str,
    },
    /// A section's payload does not match its recorded CRC32 — bit rot,
    /// a torn write, or in-place tampering.
    ChecksumMismatch {
        /// The section id whose checksum failed.
        section: u32,
    },
    /// A section required by the reader is absent from the table.
    MissingSection {
        /// The absent section id.
        section: u32,
    },
    /// The framing is intact (magic, version, CRCs all pass) but the
    /// decoded content is structurally inconsistent.
    Corrupt {
        /// What invariant the content violated.
        context: &'static str,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic { found } => write!(
                f,
                "not a pass-join snapshot (bad magic {:02x?})",
                &found[..]
            ),
            PersistError::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads versions {}..={})",
                crate::MIN_SUPPORTED_VERSION,
                crate::FORMAT_VERSION
            ),
            PersistError::Truncated { context } => {
                write!(f, "snapshot truncated: {context}")
            }
            PersistError::ChecksumMismatch { section } => {
                write!(
                    f,
                    "checksum mismatch in section {section} (file is corrupt)"
                )
            }
            PersistError::MissingSection { section } => {
                write!(f, "snapshot is missing required section {section}")
            }
            PersistError::Corrupt { context } => {
                write!(f, "snapshot is corrupt: {context}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}
