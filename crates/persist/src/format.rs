//! The snapshot container: header + section table + packed payloads.
//!
//! ```text
//! offset    size  field
//! 0         8     magic  = "PASSJSNP"
//! 8         4     format version (u32 LE)
//! 12        4     section count n (u32 LE)
//! 16        24·n  section table: { id: u32, offset: u64, len: u64, crc32: u32 }
//! 16+24n    4     header CRC32 (over bytes 0 .. 16+24n)
//! 16+24n+4  …     section payloads, densely packed in table order
//! ```
//!
//! All integers are little-endian. Sections are packed with **no padding**
//! and must tile the rest of the file exactly: the header CRC covers the
//! magic, version, count, and table, and each payload carries its own
//! CRC32, so every byte of a well-formed file is checksummed and any
//! single-byte corruption is detectable. Alignment is not required because
//! readers decode integers with `from_le_bytes` on copied arrays — the
//! "contiguous aligned buffer" the loader hands out is byte-addressed.
//!
//! Section ids are assigned by the format's consumer (the online
//! snapshot's ids live in `passjoin-online::persist`); the framing only
//! requires them to be unique within one file.

use std::ops::Range;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use sj_common::SharedBytes;

use crate::crc::crc32;
use crate::error::PersistError;

/// First 8 bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"PASSJSNP";

/// The format revision this build writes. Any change to the layout of the
/// container *or* of any section payload bumps this number.
///
/// Version history:
///
/// * **1** — initial container; online snapshots carry byte-keyed segment
///   postings (section 4).
/// * **2** — online snapshots record their key backend in META and may
///   carry an interned-segment section (dictionary + id-keyed postings,
///   section 5) instead of section 4.
/// * **3** — online snapshots additionally carry a direct-probe postings
///   appendix (sorted run directory + run table + key blob + id blob,
///   sections 6–9) laid out for in-buffer binary search, so a load can
///   skip the hash-map rebuild entirely; delta-checkpoint files (sections
///   20–21) share the container.
pub const FORMAT_VERSION: u32 = 3;

/// The oldest format revision this build still reads. Loaders accept
/// `MIN_SUPPORTED_VERSION..=FORMAT_VERSION` and dispatch on
/// [`SnapshotFile::version`]; v1 files (owned keys, 6-field META) remain
/// loadable forever-until-announced.
pub const MIN_SUPPORTED_VERSION: u32 = 1;

/// Fixed header length (magic + version + section count).
const HEADER_LEN: usize = 16;

/// Bytes per section-table entry (id + offset + len + crc).
const TABLE_ENTRY_LEN: usize = 24;

/// Hard cap on the section count, bounding allocation on corrupt headers.
const MAX_SECTIONS: u32 = 1024;

/// Absolute file offset of the first payload byte in a container with
/// `n_sections` sections (header + table + header CRC). Writers that must
/// place in-file-aligned data — the direct-probe id blob — use this to
/// compute a payload's absolute position before rendering it.
pub const fn payload_base(n_sections: usize) -> usize {
    HEADER_LEN + TABLE_ENTRY_LEN * n_sections + 4
}

/// Builds a snapshot file from named sections.
///
/// Sections are written in the order they are added; the writer computes
/// offsets and CRCs and emits the complete container with
/// [`SnapshotWriter::save`] (or [`SnapshotWriter::write_to`] for an
/// arbitrary sink). Output is deterministic: the same sections in the same
/// order produce byte-identical files.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a section. Ids must be unique within the file.
    ///
    /// # Panics
    ///
    /// Panics if `id` was already added — duplicate section ids are a
    /// writer-side programming error, not a runtime condition.
    pub fn section(&mut self, id: u32, payload: Vec<u8>) -> &mut Self {
        assert!(
            self.sections.iter().all(|&(existing, _)| existing != id),
            "duplicate section id {id}"
        );
        assert!(
            self.sections.len() < MAX_SECTIONS as usize,
            "too many sections"
        );
        self.sections.push((id, payload));
        self
    }

    /// Serializes the container into `out`; returns the total byte length.
    pub fn write_to<W: std::io::Write>(&self, out: &mut W) -> Result<u64, PersistError> {
        let header = self.render_header();
        out.write_all(&header)?;
        let mut total = header.len() as u64;
        for (_, payload) in &self.sections {
            out.write_all(payload)?;
            total += payload.len() as u64;
        }
        out.flush()?;
        Ok(total)
    }

    /// Writes the container to `path` crash-atomically; returns the
    /// file's byte length.
    ///
    /// The bytes go to a sibling temp file first, are synced to stable
    /// storage, and are then renamed over `path` — a crash mid-save
    /// leaves any previous snapshot at `path` untouched (torn writes are
    /// this format's stated corruption model; the save path must not be
    /// the thing that tears).
    pub fn save(&self, path: &Path) -> Result<u64, PersistError> {
        // Unique per process × call: two concurrent saves to the same
        // destination must not share a temp file, or the loser's writes
        // land inside the winner's just-published snapshot.
        static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".{}.{seq}.tmp", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        let result = (|| {
            let mut file = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            let total = self.write_to(&mut file)?;
            let file = file.into_inner().map_err(|e| e.into_error())?;
            file.sync_all()?;
            std::fs::rename(&tmp, path)?;
            Ok(total)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    fn render_header(&self) -> Vec<u8> {
        let table_len = self.sections.len() * TABLE_ENTRY_LEN;
        let mut header = Vec::with_capacity(HEADER_LEN + table_len + 4);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let mut offset = (HEADER_LEN + table_len + 4) as u64;
        for (id, payload) in &self.sections {
            header.extend_from_slice(&id.to_le_bytes());
            header.extend_from_slice(&offset.to_le_bytes());
            header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            header.extend_from_slice(&crc32(payload).to_le_bytes());
            offset += payload.len() as u64;
        }
        let header_crc = crc32(&header);
        header.extend_from_slice(&header_crc.to_le_bytes());
        header
    }
}

/// A validated, loaded snapshot file: one contiguous buffer plus the
/// parsed section table.
///
/// Opening re-checks everything — magic, version, table bounds, dense
/// section tiling, and every section's CRC32 — so a `SnapshotFile` in hand
/// is a proof the container is well-formed. Payload views borrow from one
/// shared buffer; [`SnapshotFile::section_range`] +
/// [`SnapshotFile::buffer`] let a consumer keep zero-copy references into
/// it after the `SnapshotFile` itself is gone.
///
/// [`SnapshotFile::parse_lazy`] defers the per-section payload CRCs: the
/// header, table, and dense tiling are still validated eagerly (so the
/// section *geometry* is trustworthy), but payload bytes are only
/// checksummed when first touched through [`SnapshotFile::section`], or
/// explicitly via [`SnapshotFile::verify_section`] /
/// [`SnapshotFile::verify_all`]. This is what makes a memory-mapped open
/// O(1) in file size: nothing faults in the bulk sections until they are
/// used. [`SnapshotFile::section_range`] never checksums — consumers on
/// the lazy path pair it with a background [`SnapshotFile::verify_all`].
#[derive(Debug, Clone)]
pub struct SnapshotFile {
    buf: SharedBytes,
    version: u32,
    sections: Vec<(u32, Range<usize>, u32)>,
    /// Per-section "payload CRC has been checked" memo, shared across
    /// clones (the buffer is immutable, so one check settles it for all).
    verified: Arc<[AtomicBool]>,
}

impl SnapshotFile {
    /// Reads `path` fully into memory and validates the container.
    pub fn open(path: &Path) -> Result<Self, PersistError> {
        let bytes = std::fs::read(path)?;
        Self::parse(bytes.into())
    }

    /// Validates an in-memory container, checksumming every section.
    pub fn parse(buf: SharedBytes) -> Result<Self, PersistError> {
        Self::parse_inner(buf, true)
    }

    /// Validates the container's framing (magic, version, header CRC,
    /// dense tiling) but defers section payload CRCs to first access —
    /// see the type-level docs for the contract.
    pub fn parse_lazy(buf: SharedBytes) -> Result<Self, PersistError> {
        Self::parse_inner(buf, false)
    }

    fn parse_inner(buf: SharedBytes, eager: bool) -> Result<Self, PersistError> {
        if buf.len() < HEADER_LEN {
            return Err(PersistError::Truncated { context: "header" });
        }
        if buf[..8] != MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(&buf[..8]);
            return Err(PersistError::BadMagic { found });
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        if !(MIN_SUPPORTED_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(PersistError::UnsupportedVersion { found: version });
        }
        let count = u32::from_le_bytes(buf[12..16].try_into().unwrap());
        if count > MAX_SECTIONS {
            return Err(PersistError::Corrupt {
                context: "section count exceeds the format maximum",
            });
        }
        let table_end = HEADER_LEN + count as usize * TABLE_ENTRY_LEN;
        if buf.len() < table_end + 4 {
            return Err(PersistError::Truncated {
                context: "section table",
            });
        }
        // The header CRC covers magic, version, count, and the whole table
        // — so flipped table bytes (including section ids) are caught even
        // when they would otherwise parse cleanly.
        let stored_header_crc =
            u32::from_le_bytes(buf[table_end..table_end + 4].try_into().unwrap());
        if crc32(&buf[..table_end]) != stored_header_crc {
            return Err(PersistError::Corrupt {
                context: "header checksum mismatch",
            });
        }

        let mut sections = Vec::with_capacity(count as usize);
        // Sections must tile the file densely: each payload starts where
        // the previous one ended, and the last ends at EOF. This makes
        // every byte of the file checksummed (see the module docs).
        let mut expected_offset = (table_end + 4) as u64;
        for entry in 0..count as usize {
            let at = HEADER_LEN + entry * TABLE_ENTRY_LEN;
            let id = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap());
            let offset = u64::from_le_bytes(buf[at + 4..at + 12].try_into().unwrap());
            let len = u64::from_le_bytes(buf[at + 12..at + 20].try_into().unwrap());
            let crc = u32::from_le_bytes(buf[at + 20..at + 24].try_into().unwrap());
            if sections.iter().any(|&(existing, _, _)| existing == id) {
                return Err(PersistError::Corrupt {
                    context: "duplicate section id",
                });
            }
            if offset != expected_offset {
                return Err(PersistError::Corrupt {
                    context: "sections are not densely packed",
                });
            }
            let end = offset.checked_add(len).ok_or(PersistError::Corrupt {
                context: "section extent overflows",
            })?;
            if end > buf.len() as u64 {
                return Err(PersistError::Truncated {
                    context: "section payload",
                });
            }
            let range = offset as usize..end as usize;
            if eager && crc32(&buf[range.clone()]) != crc {
                return Err(PersistError::ChecksumMismatch { section: id });
            }
            sections.push((id, range, crc));
            expected_offset = end;
        }
        if expected_offset != buf.len() as u64 {
            return Err(PersistError::Corrupt {
                context: "trailing bytes after the last section",
            });
        }
        let verified: Arc<[AtomicBool]> = sections.iter().map(|_| AtomicBool::new(eager)).collect();
        Ok(Self {
            buf,
            version,
            sections,
            verified,
        })
    }

    /// The format revision the file was written with (within
    /// [`MIN_SUPPORTED_VERSION`]`..=`[`FORMAT_VERSION`]); consumers
    /// dispatch their section layouts on this.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The payload of section `id`, checksummed on first access if the
    /// file was opened with [`SnapshotFile::parse_lazy`].
    pub fn section(&self, id: u32) -> Result<&[u8], PersistError> {
        let at = self.section_index(id)?;
        self.check_crc(at)?;
        Ok(&self.buf[self.sections[at].1.clone()])
    }

    /// The byte range of section `id` within [`SnapshotFile::buffer`] —
    /// the zero-copy handle: clone the buffer handle and index with this
    /// range to keep the payload alive without copying it. Never
    /// checksums the payload on the lazy path (see the type-level docs).
    pub fn section_range(&self, id: u32) -> Result<Range<usize>, PersistError> {
        Ok(self.sections[self.section_index(id)?].1.clone())
    }

    /// Checksums section `id`'s payload now (memoized). A no-op for
    /// eagerly-parsed files and already-verified sections.
    pub fn verify_section(&self, id: u32) -> Result<(), PersistError> {
        self.check_crc(self.section_index(id)?)
    }

    /// Checksums every not-yet-verified section payload; the background
    /// integrity pass behind lazy opens.
    pub fn verify_all(&self) -> Result<(), PersistError> {
        for at in 0..self.sections.len() {
            self.check_crc(at)?;
        }
        Ok(())
    }

    /// The ids of every section present, in file order.
    pub fn section_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.sections.iter().map(|&(id, _, _)| id)
    }

    fn section_index(&self, id: u32) -> Result<usize, PersistError> {
        self.sections
            .iter()
            .position(|&(existing, _, _)| existing == id)
            .ok_or(PersistError::MissingSection { section: id })
    }

    fn check_crc(&self, at: usize) -> Result<(), PersistError> {
        // Relaxed is enough: the memo only skips a redundant pure
        // computation, it guards no other data.
        if !self.verified[at].load(Ordering::Relaxed) {
            let (id, ref range, crc) = self.sections[at];
            if crc32(&self.buf[range.clone()]) != crc {
                return Err(PersistError::ChecksumMismatch { section: id });
            }
            self.verified[at].store(true, Ordering::Relaxed);
        }
        Ok(())
    }

    /// The whole file as one contiguous shared buffer.
    pub fn buffer(&self) -> &SharedBytes {
        &self.buf
    }
}

/// A bounds-checked little-endian reader over one section payload.
///
/// Every read reports [`PersistError::Corrupt`] (with the cursor's
/// context) instead of panicking when the payload is shorter than its
/// structure promises — a CRC-valid section can still lie about its
/// internal counts, and the decoder must reject that gracefully.
#[derive(Debug)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> Cursor<'a> {
    /// A cursor over `buf`; `context` names the section in error messages.
    pub fn new(buf: &'a [u8], context: &'static str) -> Self {
        Self {
            buf,
            pos: 0,
            context,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(PersistError::Corrupt {
                context: self.context,
            }),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u64` and converts it to `usize`, rejecting values that do
    /// not fit the platform.
    pub fn len64(&mut self) -> Result<usize, PersistError> {
        usize::try_from(self.u64()?).map_err(|_| PersistError::Corrupt {
            context: self.context,
        })
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        self.take(n)
    }

    /// Current offset within the payload.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(self) -> Result<(), PersistError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(PersistError::Corrupt {
                context: self.context,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.section(1, b"first section".to_vec());
        w.section(7, vec![]);
        w.section(2, (0u8..200).collect());
        let mut out = Vec::new();
        let n = w.write_to(&mut out).unwrap();
        assert_eq!(n as usize, out.len());
        out
    }

    #[test]
    fn round_trip_sections() {
        let bytes = sample();
        let file = SnapshotFile::parse(bytes.into()).unwrap();
        assert_eq!(file.section(1).unwrap(), b"first section");
        assert_eq!(file.section(7).unwrap(), b"");
        assert_eq!(file.section(2).unwrap().len(), 200);
        assert!(matches!(
            file.section(9),
            Err(PersistError::MissingSection { section: 9 })
        ));
    }

    #[test]
    fn writer_is_deterministic() {
        assert_eq!(sample(), sample());
    }

    #[test]
    fn accepts_the_previous_format_version() {
        // Rewrite the sample's version field to 1 and repair the header
        // CRC: the parser must accept it and report the version it found.
        let mut bytes = sample();
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        let payload_len = b"first section".len() + 200;
        let table_end = bytes.len() - payload_len - 4;
        let crc = crc32(&bytes[..table_end]);
        bytes[table_end..table_end + 4].copy_from_slice(&crc.to_le_bytes());
        let file = SnapshotFile::parse(bytes.into()).unwrap();
        assert_eq!(file.version(), 1);
        assert_eq!(file.section(1).unwrap(), b"first section");
    }

    #[test]
    fn reports_the_written_version() {
        let file = SnapshotFile::parse(sample().into()).unwrap();
        assert_eq!(file.version(), FORMAT_VERSION);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bytes = sample();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            SnapshotFile::parse(bytes.into()),
            Err(PersistError::BadMagic { .. })
        ));

        let mut bytes = sample();
        bytes[8] = 99; // version field
        assert!(matches!(
            SnapshotFile::parse(bytes.into()),
            Err(PersistError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            let truncated = SharedBytes::from(bytes[..cut].to_vec());
            assert!(
                SnapshotFile::parse(truncated).is_err(),
                "truncation to {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn lazy_parse_defers_payload_checks_to_access() {
        // Corrupt a payload byte, then repair nothing: eager parse must
        // reject, lazy parse must accept — until the section is touched.
        let mut bytes = sample();
        let at = bytes.len() - 1; // inside section 2's payload
        bytes[at] ^= 0x40;
        assert!(matches!(
            SnapshotFile::parse(SharedBytes::from(bytes.clone())),
            Err(PersistError::ChecksumMismatch { section: 2 })
        ));
        let file = SnapshotFile::parse_lazy(SharedBytes::from(bytes)).unwrap();
        assert_eq!(file.section(1).unwrap(), b"first section");
        assert!(file.section_range(2).is_ok(), "geometry is still served");
        assert!(matches!(
            file.section(2),
            Err(PersistError::ChecksumMismatch { section: 2 })
        ));
        assert!(matches!(
            file.verify_all(),
            Err(PersistError::ChecksumMismatch { section: 2 })
        ));
    }

    #[test]
    fn lazy_verification_is_memoized_and_shared() {
        let file = SnapshotFile::parse_lazy(SharedBytes::from(sample())).unwrap();
        let clone = file.clone();
        file.verify_all().unwrap();
        // The clone shares the memo; spot-check via the public surface.
        clone.verify_section(2).unwrap();
        assert_eq!(clone.section_ids().collect::<Vec<_>>(), vec![1, 7, 2]);
    }

    #[test]
    fn rejects_every_single_byte_flip() {
        let bytes = sample();
        for at in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[at] ^= 0x40;
            assert!(
                SnapshotFile::parse(flipped.into()).is_err(),
                "flip at byte {at} must be rejected"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = sample();
        bytes.push(0);
        assert!(matches!(
            SnapshotFile::parse(bytes.into()),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn cursor_reads_and_rejects_overrun() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        payload.extend_from_slice(&42u64.to_le_bytes());
        payload.extend_from_slice(b"xyz");
        let mut c = Cursor::new(&payload, "test");
        assert_eq!(c.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.u64().unwrap(), 42);
        assert_eq!(c.bytes(3).unwrap(), b"xyz");
        assert!(c.u32().is_err(), "reading past the end is an error");

        let mut c = Cursor::new(&payload, "test");
        c.u32().unwrap();
        assert!(c.finish().is_err(), "unconsumed payload is an error");
    }
}
