//! **passjoin-persist** — the on-disk snapshot format for Pass-Join
//! indices.
//!
//! `OnlineIndex::from_strings` rebuilds the whole index on every process
//! start: it re-partitions every string and re-inserts every segment into
//! the inverted maps. This crate makes the index a durable artifact
//! instead: a single-file, versioned, checksummed **snapshot** that a
//! serving process writes once and reloads in a fraction of the rebuild
//! time, with the string arena mapped **zero-copy** out of the loaded
//! buffer.
//!
//! The crate is deliberately split in two layers:
//!
//! * **Framing** ([`mod@format`]) — a generic container: magic + version
//!   header, a section table, and densely packed per-section payloads,
//!   each protected by CRC32. [`SnapshotWriter`] builds a file;
//!   [`SnapshotFile`] validates and exposes one. Nothing here knows what
//!   an index is.
//! * **Codecs** — [`segmap`] encodes `passjoin`'s segment inverted
//!   indices (`SegmentMap`) as a flat posting stream, built on the
//!   raw-parts API the core crate exposes for exactly this purpose
//!   ([`passjoin::SegmentMap::visit_postings`] /
//!   [`passjoin::SegmentMap::restore_posting`]); [`segdirect`] encodes
//!   the same postings as sorted arrays probed **in place** by
//!   [`passjoin::DirectSegmentIndex`] (format v3's zero-rebuild load
//!   path); [`delta`] encodes incremental insert/remove logs against a
//!   base snapshot (delta checkpoints).
//!
//! The *snapshot semantics* — which sections exist and how the online
//! index's strings, tombstones, and lanes map onto them — live in
//! `passjoin-online`'s `persist` module, next to the structures they
//! serialize. See the README's "Snapshot file format" section for the
//! byte-level layout and the versioning policy.
//!
//! Everything is hand-rolled little-endian `std`-only code: the build
//! environment has no crates.io access, so there is no `serde`, no `bincode`,
//! and no mmap crate — the loader reads the file into one contiguous
//! buffer and hands out `Arc`-shared views instead.
//!
//! # Corruption model
//!
//! Every load re-validates the file: wrong magic ([`PersistError::BadMagic`]),
//! unknown version ([`PersistError::UnsupportedVersion`]), truncation
//! ([`PersistError::Truncated`]), bit rot inside a section
//! ([`PersistError::ChecksumMismatch`]), and structural lies that survive
//! framing ([`PersistError::Corrupt`]) are all typed errors, never panics.
//! The corruption property test in `passjoin-online` flips every byte of a
//! snapshot and asserts each flip is rejected — which is why sections are
//! packed without padding: every byte of the file is covered by either a
//! semantic header field or a section CRC.

mod crc;
pub mod delta;
mod error;
pub mod format;
pub mod segdirect;
pub mod segmap;

pub use crc::crc32;
pub use delta::{DeltaMeta, DeltaOp};
pub use error::PersistError;
pub use format::{
    Cursor, SnapshotFile, SnapshotWriter, FORMAT_VERSION, MAGIC, MIN_SUPPORTED_VERSION,
};
