//! Codec for the direct-probe postings appendix (snapshot format v3).
//!
//! Four sections encode the segment postings as sorted arrays that
//! [`DirectSegmentIndex`] binary-searches **in place** — loading them is
//! O(1) in index size because nothing is decoded into owned structures:
//!
//! ```text
//! SEC_DIRECT_DIR (6)  — the directory:
//!   scheme: u32   tau: u32   max_len: u32   n_lengths: u32
//!   n_runs: u64   n_entries: u64
//!   n_lengths × { l: u32, run_start: u64, run_count: u64 }   (l ascending)
//!
//! SEC_DIRECT_RUNS (7) — the run table, 28 bytes per run, ordered by
//!   (l asc, slot asc, key bytes asc):
//!   { slot: u32, key_len: u32, key_off: u64, ids_off: u64, n_ids: u32 }
//!   key_off indexes SEC_DIRECT_KEYS; ids_off is an *element* index into
//!   the id array. Keys and ids each tile their blob exactly in run order.
//!
//! SEC_DIRECT_KEYS (8) — concatenated key bytes.
//!
//! SEC_DIRECT_IDS (9)  — pad_len: u32, pad_len zero bytes, then the
//!   posting ids as little-endian u32. The pad is chosen at write time so
//!   the id array lands 8-byte-aligned at its absolute file offset: a
//!   page-aligned mmap of the file then serves `&[StringId]` views with
//!   no copy at all.
//! ```
//!
//! The run order `(l, slot, key)` is exactly the deterministic order
//! [`SegmentMap::visit_postings`] produces, so the appendix — like every
//! other section — is byte-identical across saves of the same content.
//! The interned backend's postings are re-sorted from dictionary-id order
//! into byte order at encode time.
//!
//! [`SegmentMap::visit_postings`]: passjoin::SegmentMap::visit_postings

use passjoin::direct::{DirectSegmentIndex, LengthRuns, RUN_ENTRY_LEN};
use passjoin::{InternedSegmentIndex, PartitionScheme, SegmentKey, SegmentMap};
use sj_common::StringId;

use crate::error::PersistError;
use crate::format::{Cursor, SnapshotFile};
use crate::segmap::{scheme_code, scheme_from_code};

/// Section id: the direct-probe directory.
pub const SEC_DIRECT_DIR: u32 = 6;
/// Section id: the direct-probe run table.
pub const SEC_DIRECT_RUNS: u32 = 7;
/// Section id: the direct-probe key blob.
pub const SEC_DIRECT_KEYS: u32 = 8;
/// Section id: the direct-probe id blob.
pub const SEC_DIRECT_IDS: u32 = 9;

/// Alignment the id array is padded to at its absolute file offset.
const IDS_ALIGN: u64 = 8;

/// The encoded direct-probe appendix, one buffer per section. The id
/// section still needs its alignment pad — finalize with
/// [`DirectSections::ids_section`] once the writer knows the section's
/// absolute payload offset.
#[derive(Debug)]
pub struct DirectSections {
    /// `SEC_DIRECT_DIR` payload.
    pub dir: Vec<u8>,
    /// `SEC_DIRECT_RUNS` payload.
    pub runs: Vec<u8>,
    /// `SEC_DIRECT_KEYS` payload.
    pub keys: Vec<u8>,
    /// Raw little-endian id array, pad not yet applied.
    ids_body: Vec<u8>,
}

impl DirectSections {
    /// Renders the `SEC_DIRECT_IDS` payload for an id array that will
    /// start at absolute file offset `abs_offset + 4 + pad`: prepends the
    /// pad length and zero bytes so the array is 8-byte-aligned in-file.
    pub fn ids_section(&self, abs_offset: u64) -> Vec<u8> {
        let body_at = abs_offset + 4;
        let pad = (IDS_ALIGN - body_at % IDS_ALIGN) % IDS_ALIGN;
        let mut out = Vec::with_capacity(4 + pad as usize + self.ids_body.len());
        out.extend_from_slice(&(pad as u32).to_le_bytes());
        out.resize(out.len() + pad as usize, 0);
        out.extend_from_slice(&self.ids_body);
        out
    }

    /// Renders all four `(section id, payload)` pairs in file order, given
    /// the absolute offset the id-section payload will start at (the three
    /// preceding payloads' lengths are `dir`/`runs`/`keys` — public fields,
    /// so the caller can sum them into its section layout).
    pub fn finish(self, ids_abs_offset: u64) -> [(u32, Vec<u8>); 4] {
        let ids = self.ids_section(ids_abs_offset);
        [
            (SEC_DIRECT_DIR, self.dir),
            (SEC_DIRECT_RUNS, self.runs),
            (SEC_DIRECT_KEYS, self.keys),
            (SEC_DIRECT_IDS, ids),
        ]
    }
}

/// Encodes the direct-probe appendix from any posting visitor. Postings
/// may arrive in any order; they are sorted into `(l, slot, key)` order
/// here, so the output depends on the index's logical content alone.
pub fn encode_direct(
    scheme: PartitionScheme,
    tau: usize,
    visit: impl FnOnce(&mut dyn FnMut(usize, usize, &[u8], &[StringId])),
) -> DirectSections {
    let mut postings: Vec<(u32, u32, Vec<u8>, Vec<StringId>)> = Vec::new();
    visit(&mut |l, slot, key, ids| {
        postings.push((l as u32, slot as u32, key.to_vec(), ids.to_vec()));
    });
    postings.sort_unstable_by(|a, b| (a.0, a.1, &a.2).cmp(&(b.0, b.1, &b.2)));

    let mut dir_entries: Vec<LengthRuns> = Vec::new();
    let mut runs = Vec::with_capacity(postings.len() * RUN_ENTRY_LEN);
    let mut keys = Vec::new();
    let mut ids_body = Vec::new();
    let mut n_entries = 0u64;
    let mut max_len = 0u32;
    for (run_at, (l, slot, key, ids)) in postings.iter().enumerate() {
        match dir_entries.last_mut() {
            Some(entry) if entry.l == *l => entry.run_count += 1,
            _ => dir_entries.push(LengthRuns {
                l: *l,
                run_start: run_at as u64,
                run_count: 1,
            }),
        }
        max_len = max_len.max(*l);
        runs.extend_from_slice(&slot.to_le_bytes());
        runs.extend_from_slice(&(key.len() as u32).to_le_bytes());
        runs.extend_from_slice(&(keys.len() as u64).to_le_bytes());
        runs.extend_from_slice(&((ids_body.len() / 4) as u64).to_le_bytes());
        runs.extend_from_slice(&(ids.len() as u32).to_le_bytes());
        keys.extend_from_slice(key);
        for &id in ids {
            ids_body.extend_from_slice(&id.to_le_bytes());
        }
        n_entries += ids.len() as u64;
    }

    let mut dir = Vec::with_capacity(32 + dir_entries.len() * 20);
    dir.extend_from_slice(&scheme_code(scheme).to_le_bytes());
    dir.extend_from_slice(&(tau as u32).to_le_bytes());
    dir.extend_from_slice(&max_len.to_le_bytes());
    dir.extend_from_slice(&(dir_entries.len() as u32).to_le_bytes());
    dir.extend_from_slice(&(postings.len() as u64).to_le_bytes());
    dir.extend_from_slice(&n_entries.to_le_bytes());
    for entry in &dir_entries {
        dir.extend_from_slice(&entry.l.to_le_bytes());
        dir.extend_from_slice(&entry.run_start.to_le_bytes());
        dir.extend_from_slice(&entry.run_count.to_le_bytes());
    }
    DirectSections {
        dir,
        runs,
        keys,
        ids_body,
    }
}

/// Encodes the appendix from a byte-keyed segment map.
pub fn encode_direct_owned<K: SegmentKey + std::borrow::Borrow<[u8]> + Ord>(
    map: &SegmentMap<K>,
) -> DirectSections {
    encode_direct(map.scheme(), map.tau(), |f| {
        map.visit_postings(|l, slot, key, ids| f(l, slot, key, ids))
    })
}

/// Encodes the appendix from an interned segment index, resolving each
/// dictionary id to its bytes (the sort inside [`encode_direct`] restores
/// byte order — the interned visitor yields dictionary-id order).
pub fn encode_direct_interned(index: &InternedSegmentIndex) -> DirectSections {
    encode_direct(index.scheme(), index.tau(), |f| {
        index.visit_postings(|l, slot, seg, ids| {
            let key = index
                .interner()
                .bytes_of(seg)
                .expect("posting references an interned segment");
            f(l, slot, key, ids)
        })
    })
}

/// Decodes the direct-probe appendix of `file` into a
/// [`DirectSegmentIndex`] probing the file's own buffer.
///
/// The directory section is parsed and cross-checked eagerly (scheme,
/// τ, run-table geometry, blob sizes — all O(#lengths)); the run table,
/// key blob, and id blob are *not* walked. Pass `deep_universe` to run
/// [`DirectSegmentIndex::validate_deep`] before returning — the default
/// load path does, the O(1) instant path defers it to a background
/// integrity pass and relies on the probe-time bounds checks meanwhile.
pub fn decode_direct(
    file: &SnapshotFile,
    expected_tau: usize,
    deep_universe: Option<usize>,
) -> Result<DirectSegmentIndex, PersistError> {
    const CONTEXT: &str = "direct postings directory";
    let corrupt = |context: &'static str| PersistError::Corrupt { context };

    let dir = file.section(SEC_DIRECT_DIR)?;
    let mut cursor = Cursor::new(dir, CONTEXT);
    let scheme = scheme_from_code(cursor.u32()?).ok_or(corrupt("unknown partition scheme"))?;
    let tau = cursor.u32()? as usize;
    if tau != expected_tau {
        return Err(corrupt(
            "direct postings disagree with the snapshot's tau_max",
        ));
    }
    let max_len = cursor.u32()? as usize;
    let n_lengths = cursor.u32()? as usize;
    let n_runs = cursor.u64()?;
    let n_entries = cursor.u64()?;
    // The remaining payload is exactly the directory entries; sizing the
    // allocation from the payload length bounds it against hostile counts.
    let mut lengths = Vec::with_capacity(n_lengths.min(dir.len() / 20 + 1));
    for _ in 0..n_lengths {
        lengths.push(LengthRuns {
            l: cursor.u32()?,
            run_start: cursor.u64()?,
            run_count: cursor.u64()?,
        });
    }
    cursor.finish()?;

    let runs = file.section_range(SEC_DIRECT_RUNS)?;
    if runs.len() as u64 != n_runs.saturating_mul(RUN_ENTRY_LEN as u64) {
        return Err(corrupt("direct run table length disagrees with directory"));
    }
    let keys = file.section_range(SEC_DIRECT_KEYS)?;

    // The id section: pad header, zero pad, then the element array.
    let ids_range = file.section_range(SEC_DIRECT_IDS)?;
    let ids_payload = &file.buffer()[ids_range.clone()];
    let mut ids_cursor = Cursor::new(ids_payload, "direct id blob");
    let pad = ids_cursor.u32()? as usize;
    if pad as u64 >= IDS_ALIGN {
        return Err(corrupt("direct id blob pad exceeds the alignment"));
    }
    if ids_cursor.bytes(pad)?.iter().any(|&b| b != 0) {
        return Err(corrupt("direct id blob pad is not zeroed"));
    }
    let ids = ids_range.start + ids_cursor.position()..ids_range.end;
    if ids.len() as u64 != n_entries.saturating_mul(4) {
        return Err(corrupt("direct id blob length disagrees with directory"));
    }

    let index = DirectSegmentIndex::from_raw_parts(
        file.buffer().clone(),
        scheme,
        tau,
        max_len,
        n_entries,
        lengths,
        runs,
        keys,
        ids,
    )
    .map_err(corrupt)?;
    if let Some(universe) = deep_universe {
        index.validate_deep(universe).map_err(corrupt)?;
    }
    Ok(index)
}

/// True when `file` carries the direct-probe appendix (v3 snapshots
/// written by this build always do; v1/v2 files never do).
pub fn has_direct_sections(file: &SnapshotFile) -> bool {
    file.section_ids().any(|id| id == SEC_DIRECT_DIR)
}
