//! Codec for `passjoin`'s segment inverted indices ([`SegmentMap`]).
//!
//! The encoding is a flat posting stream over the core crate's raw-parts
//! API:
//!
//! ```text
//! scheme: u32          (0 = even partition, 1 = left-heavy)
//! tau:    u32          (the τ the map partitions for)
//! n_postings: u64
//! n_postings × {
//!   l: u32  slot: u32  key_len: u32  n_ids: u32
//!   key bytes (key_len)
//!   ids (n_ids × u32, strictly ascending)
//! }
//! ```
//!
//! [`SegmentMap::visit_postings`] guarantees a deterministic visiting
//! order, so encoding the same index twice yields identical bytes — and
//! decoding replays each posting through
//! [`SegmentMap::restore_posting`], which re-validates the partition
//! geometry and id ordering. No string is ever re-partitioned on load:
//! that is where the load-vs-rebuild speedup comes from (restoring a
//! posting is one hash insert of a ready-made list, while a rebuild pays
//! τ+1 sorted inserts *per string*).

use passjoin::{
    InternedSegmentIndex, OwnedSegmentIndex, PartitionScheme, SegId, SegmentKey, SegmentMap,
};
use sj_common::StringId;

use crate::error::PersistError;
use crate::format::Cursor;

pub(crate) fn scheme_code(scheme: PartitionScheme) -> u32 {
    match scheme {
        PartitionScheme::Even => 0,
        PartitionScheme::LeftHeavy => 1,
    }
}

pub(crate) fn scheme_from_code(code: u32) -> Option<PartitionScheme> {
    match code {
        0 => Some(PartitionScheme::Even),
        1 => Some(PartitionScheme::LeftHeavy),
        _ => None,
    }
}

/// Serializes a byte-keyed segment map into a section payload.
pub fn encode<K: SegmentKey + std::borrow::Borrow<[u8]> + Ord>(map: &SegmentMap<K>) -> Vec<u8> {
    encode_with(map.scheme(), map.tau(), |f| {
        map.visit_postings(|l, slot, key, ids| f(l, slot, key, ids))
    })
}

/// [`encode`] over any posting visitor yielding the deterministic
/// `(l, slot, key)` order — the order [`SegmentMap::visit_postings`] and
/// [`passjoin::DirectSegmentIndex::try_visit_postings`] both produce. Lets
/// a direct-probe store re-save its origin's section byte-identically
/// without materializing a hash map first.
pub fn encode_with(
    scheme: PartitionScheme,
    tau: usize,
    visit: impl FnOnce(&mut dyn FnMut(usize, usize, &[u8], &[StringId])),
) -> Vec<u8> {
    // Single visiting pass (each visit re-sorts every bucket for the
    // deterministic order, so walking twice to pre-count would double the
    // dominant save cost): write a placeholder count, patch it after.
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&scheme_code(scheme).to_le_bytes());
    out.extend_from_slice(&(tau as u32).to_le_bytes());
    let count_at = out.len();
    out.extend_from_slice(&0u64.to_le_bytes());
    let mut postings = 0u64;
    visit(&mut |l, slot, key, ids| {
        postings += 1;
        out.extend_from_slice(&(l as u32).to_le_bytes());
        out.extend_from_slice(&(slot as u32).to_le_bytes());
        out.extend_from_slice(&(key.len() as u32).to_le_bytes());
        out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
        out.extend_from_slice(key);
        for &id in ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
    });
    out[count_at..count_at + 8].copy_from_slice(&postings.to_le_bytes());
    out
}

/// Decodes a section payload into an owned segment map.
///
/// `expected_tau` cross-checks the payload against the snapshot's
/// metadata; every id must be below `universe` (the loaded string
/// table's size) and every posting length at most `max_len` (the longest
/// live string) — postings referencing ids or lengths the string table
/// cannot contain are rejected as corrupt. The length bound is also the
/// allocation guard: the per-length table is sized by the largest `l`
/// restored, so a crafted length field must be rejected *before* it can
/// force a multi-gigabyte resize.
pub fn decode(
    payload: &[u8],
    expected_tau: usize,
    universe: usize,
    max_len: usize,
) -> Result<OwnedSegmentIndex, PersistError> {
    const CONTEXT: &str = "segment postings section";
    let corrupt = |_: &'static str| PersistError::Corrupt { context: CONTEXT };

    let mut cursor = Cursor::new(payload, CONTEXT);
    let scheme = scheme_from_code(cursor.u32()?).ok_or(PersistError::Corrupt {
        context: "unknown partition scheme",
    })?;
    let tau = cursor.u32()? as usize;
    if tau != expected_tau {
        return Err(PersistError::Corrupt {
            context: "segment postings disagree with the snapshot's tau_max",
        });
    }
    let n_postings = cursor.u64()?;

    let mut map = OwnedSegmentIndex::with_scheme(0, tau, scheme);
    reserve_from_counts(&mut map, payload, cursor.position(), n_postings, max_len);
    for _ in 0..n_postings {
        let l = cursor.u32()? as usize;
        if l > max_len {
            return Err(PersistError::Corrupt {
                context: "posting length exceeds the longest live string",
            });
        }
        let slot = cursor.u32()? as usize;
        let key_len = cursor.u32()? as usize;
        let n_ids = cursor.u32()? as usize;
        let key: Box<[u8]> = cursor.bytes(key_len)?.into();
        // Cap the pre-reservation: a CRC-valid but hostile `n_ids` must not
        // trigger a huge allocation before the cursor runs out of bytes.
        let mut ids = Vec::with_capacity(n_ids.min(1 << 16));
        for _ in 0..n_ids {
            let id: StringId = cursor.u32()?;
            if (id as usize) >= universe {
                return Err(PersistError::Corrupt {
                    context: "posting id outside the string table",
                });
            }
            ids.push(id);
        }
        map.restore_posting(l, slot, key, ids).map_err(corrupt)?;
    }
    cursor.finish()?;
    Ok(map)
}

/// Skims the posting stream once, counting distinct keys per `(l, slot)`,
/// and reserves the target maps accordingly — replaying tens of thousands
/// of postings into unreserved hash maps would otherwise pay log₂(n)
/// rehash-and-move rounds, a large slice of total load time. Purely an
/// optimization: any malformed frame aborts the skim and leaves validation
/// to the decode loop.
fn reserve_from_counts(
    map: &mut OwnedSegmentIndex,
    payload: &[u8],
    start: usize,
    n_postings: u64,
    max_len: usize,
) {
    // Reserving also sizes the per-length table, so skip lengths the
    // string table cannot contain — a hostile length field must not
    // trigger a multi-gigabyte table resize before the decode loop gets
    // to reject it.
    let mut counts: Vec<((u32, u32), usize)> = Vec::new();
    let mut cursor = Cursor::new(&payload[start..], "posting skim");
    for _ in 0..n_postings {
        let Ok(l) = cursor.u32() else { return };
        let Ok(slot) = cursor.u32() else { return };
        let Ok(key_len) = cursor.u32() else { return };
        let Ok(n_ids) = cursor.u32() else { return };
        if cursor.bytes(key_len as usize + n_ids as usize * 4).is_err() {
            return;
        }
        if l as usize > max_len {
            continue;
        }
        // Postings arrive grouped by (l, slot) (the visit order), so the
        // run-length accumulation stays tiny.
        match counts.last_mut() {
            Some((coords, n)) if *coords == (l, slot) => *n += 1,
            _ => counts.push(((l, slot), 1)),
        }
    }
    for ((l, slot), n) in counts {
        map.reserve_keys(l as usize, slot as usize, n);
    }
}

/// Serializes an interned segment index into a section payload:
///
/// ```text
/// scheme: u32   tau: u32
/// n_segments: u64
/// n_segments × { len: u32, bytes }     — the dictionary, byte-sorted
/// n_postings: u64
/// n_postings × {
///   l: u32  slot: u32  seg: u32 (dictionary rank)  n_ids: u32
///   ids (n_ids × u32, strictly ascending)
/// }
/// ```
///
/// Only dictionary entries referenced by at least one posting are written,
/// renumbered by their **byte order** — so the output depends on the
/// index's logical content alone, not on its insertion history (dead
/// interner ids are compacted away), and encoding the same content twice
/// yields identical bytes. Postings follow in `(l, slot, rank)` order.
pub fn encode_interned(index: &InternedSegmentIndex) -> Vec<u8> {
    let interner = index.interner();
    encode_interned_with(index.scheme(), index.tau(), |f| {
        index.visit_postings(|l, slot, seg, ids| {
            let key = interner.bytes_of(seg).expect("visited id is interned");
            f(l, slot, key, ids)
        })
    })
}

/// [`encode_interned`] over any byte-keyed posting visitor, in any order.
/// The dictionary is derived from the visited keys and ranked by bytes, so
/// the output is the same canonical payload [`encode_interned`] writes —
/// this is how a direct-probe store with an interned origin re-saves its
/// section byte-identically without rebuilding an interner.
pub fn encode_interned_with(
    scheme: PartitionScheme,
    tau: usize,
    visit: impl FnOnce(&mut dyn FnMut(usize, usize, &[u8], &[StringId])),
) -> Vec<u8> {
    let mut postings: Vec<(u32, u32, Vec<u8>, Vec<StringId>)> = Vec::new();
    let mut entries = 0usize;
    visit(&mut |l, slot, key, ids| {
        entries += ids.len();
        postings.push((l as u32, slot as u32, key.to_vec(), ids.to_vec()));
    });

    // Rank the referenced dictionary entries by their bytes.
    let mut used: Vec<&[u8]> = postings
        .iter()
        .map(|(_, _, key, _)| key.as_slice())
        .collect();
    used.sort_unstable();
    used.dedup();
    let rank_of = |key: &[u8]| used.binary_search(&key).expect("key was collected") as u32;

    let mut out = Vec::with_capacity(64 + entries * 8);
    out.extend_from_slice(&scheme_code(scheme).to_le_bytes());
    out.extend_from_slice(&(tau as u32).to_le_bytes());
    out.extend_from_slice(&(used.len() as u64).to_le_bytes());
    for bytes in &used {
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(bytes);
    }
    let mut ranked: Vec<(u32, u32, u32, &[StringId])> = postings
        .iter()
        .map(|(l, slot, key, ids)| (*l, *slot, rank_of(key), ids.as_slice()))
        .collect();
    ranked.sort_unstable_by_key(|&(l, slot, rank, _)| (l, slot, rank));
    out.extend_from_slice(&(ranked.len() as u64).to_le_bytes());
    for (l, slot, rank, ids) in &ranked {
        out.extend_from_slice(&l.to_le_bytes());
        out.extend_from_slice(&slot.to_le_bytes());
        out.extend_from_slice(&rank.to_le_bytes());
        out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
        for &id in *ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
    }
    out
}

/// Decodes an [`encode_interned`] payload into an interned segment index.
///
/// The same caller-supplied bounds as [`decode`] apply (`expected_tau`,
/// `universe`, `max_len`) — plus the checks only the interned layout can
/// make: the dictionary must be strictly byte-sorted (which also proves it
/// duplicate-free), every posting's segment rank must be a dictionary
/// entry whose byte length matches the partition geometry of its
/// `(l, slot)`, and every dictionary entry must be referenced by at least
/// one posting (the encoder compacts dead entries; a file with unreferenced
/// entries was not written by it).
pub fn decode_interned(
    payload: &[u8],
    expected_tau: usize,
    universe: usize,
    max_len: usize,
) -> Result<InternedSegmentIndex, PersistError> {
    const CONTEXT: &str = "interned segment section";
    let corrupt = |_: &'static str| PersistError::Corrupt { context: CONTEXT };

    let mut cursor = Cursor::new(payload, CONTEXT);
    let scheme = scheme_from_code(cursor.u32()?).ok_or(PersistError::Corrupt {
        context: "unknown partition scheme",
    })?;
    let tau = cursor.u32()? as usize;
    if tau != expected_tau {
        return Err(PersistError::Corrupt {
            context: "interned segment section disagrees with the snapshot's tau_max",
        });
    }
    let n_segments = cursor.u64()?;
    let mut index = InternedSegmentIndex::with_scheme(0, tau, scheme);
    let mut prev: Option<&[u8]> = None;
    for _ in 0..n_segments {
        let len = cursor.u32()? as usize;
        // A segment is a slice of a live string, so it can never be longer
        // than the longest one — and bounding it here keeps a hostile
        // length field from forcing a huge read-ahead allocation.
        if len > max_len {
            return Err(PersistError::Corrupt {
                context: "interned segment exceeds the longest live string",
            });
        }
        let bytes = cursor.bytes(len)?;
        if prev.is_some_and(|prev| prev >= bytes) {
            return Err(PersistError::Corrupt {
                context: "interner table is not strictly byte-sorted",
            });
        }
        prev = Some(bytes);
        index.restore_segment(bytes).map_err(corrupt)?;
    }
    let n_postings = cursor.u64()?;
    for _ in 0..n_postings {
        let l = cursor.u32()? as usize;
        if l > max_len {
            return Err(PersistError::Corrupt {
                context: "posting length exceeds the longest live string",
            });
        }
        let slot = cursor.u32()? as usize;
        let seg = cursor.u32()?;
        if (seg as u64) >= n_segments {
            return Err(PersistError::Corrupt {
                context: "posting references an unknown interned segment",
            });
        }
        let n_ids = cursor.u32()? as usize;
        // Cap the pre-reservation: a CRC-valid but hostile `n_ids` must not
        // trigger a huge allocation before the cursor runs out of bytes.
        let mut ids = Vec::with_capacity(n_ids.min(1 << 16));
        for _ in 0..n_ids {
            let id: StringId = cursor.u32()?;
            if (id as usize) >= universe {
                return Err(PersistError::Corrupt {
                    context: "posting id outside the string table",
                });
            }
            ids.push(id);
        }
        index
            .restore_posting(l, slot, SegId::from_raw(seg), ids)
            .map_err(corrupt)?;
    }
    cursor.finish()?;
    if index.interner().live() != index.interner().len() {
        return Err(PersistError::Corrupt {
            context: "interner table entry unreferenced by any posting",
        });
    }
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_map() -> OwnedSegmentIndex {
        let mut map = OwnedSegmentIndex::new(0, 2);
        map.insert_owned(b"aaabbbccc", 0);
        map.insert_owned(b"aaabbbccc", 4);
        map.insert_owned(b"aaabbbccd", 2);
        map.insert_owned(b"wwwxxyyzzq", 9);
        map
    }

    #[test]
    fn round_trip_preserves_probes_and_accounting() {
        let original = sample_map();
        let encoded = encode(&original);
        let decoded = decode(&encoded, 2, 10, 10).unwrap();
        assert_eq!(decoded.entries(), original.entries());
        assert_eq!(decoded.live_bytes(), original.live_bytes());
        assert_eq!(decoded.tau(), original.tau());
        original.visit_postings(|l, slot, key, ids| {
            assert_eq!(decoded.probe(l, slot, key), Some(ids));
        });
        // And nothing extra appeared.
        let mut decoded_postings = 0;
        decoded.visit_postings(|_, _, _, _| decoded_postings += 1);
        let mut original_postings = 0;
        original.visit_postings(|_, _, _, _| original_postings += 1);
        assert_eq!(decoded_postings, original_postings);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(encode(&sample_map()), encode(&sample_map()));
    }

    #[test]
    fn empty_map_round_trips() {
        let empty = OwnedSegmentIndex::new(0, 3);
        let decoded = decode(&encode(&empty), 3, 0, 0).unwrap();
        assert_eq!(decoded.entries(), 0);
        assert_eq!(decoded.tau(), 3);
    }

    #[test]
    fn rejects_mismatched_tau_and_out_of_range_ids() {
        let encoded = encode(&sample_map());
        assert!(matches!(
            decode(&encoded, 3, 10, 10),
            Err(PersistError::Corrupt { .. })
        ));
        // Universe too small for id 9.
        assert!(matches!(
            decode(&encoded, 2, 5, 10),
            Err(PersistError::Corrupt { .. })
        ));
        // Length bound too small for the 10-byte string's postings.
        assert!(matches!(
            decode(&encoded, 2, 10, 9),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn rejects_truncated_and_padded_payloads() {
        let encoded = encode(&sample_map());
        for cut in 0..encoded.len() {
            assert!(decode(&encoded[..cut], 2, 10, 10).is_err(), "cut at {cut}");
        }
        let mut padded = encoded.clone();
        padded.push(0);
        assert!(decode(&padded, 2, 10, 10).is_err());
    }

    fn sample_interned() -> InternedSegmentIndex {
        let mut index = InternedSegmentIndex::new(0, 2);
        index.insert(b"aaabbbccc", 0);
        index.insert(b"aaabbbccc", 4);
        index.insert(b"aaabbbccd", 2);
        index.insert(b"wwwxxyyzzq", 9);
        index
    }

    #[test]
    fn interned_round_trip_preserves_probes_and_dictionary() {
        let original = sample_interned();
        let encoded = encode_interned(&original);
        let decoded = decode_interned(&encoded, 2, 10, 10).unwrap();
        assert_eq!(decoded.entries(), original.entries());
        assert_eq!(decoded.tau(), original.tau());
        assert_eq!(decoded.interner().live(), original.interner().live());
        original.visit_postings(|l, slot, seg, ids| {
            let bytes = original.interner().bytes_of(seg).unwrap();
            assert_eq!(
                passjoin::SegmentProbe::probe_bytes(&decoded, l, slot, bytes),
                Some(ids)
            );
        });
    }

    #[test]
    fn interned_encoding_is_content_deterministic() {
        assert_eq!(
            encode_interned(&sample_interned()),
            encode_interned(&sample_interned())
        );

        // Different insertion (and interning) histories with the same
        // final content must serialize identically: the encoder renumbers
        // by byte order and compacts dead dictionary ids away.
        let mut churned = InternedSegmentIndex::new(0, 2);
        churned.insert(b"zzzyyyxxx", 7); // interns ids the final state won't use
        churned.insert(b"wwwxxyyzzq", 9);
        churned.insert(b"aaabbbccd", 2);
        churned.insert(b"aaabbbccc", 4);
        churned.insert(b"aaabbbccc", 0);
        assert!(churned.remove(b"zzzyyyxxx", 7));
        assert_eq!(
            encode_interned(&churned),
            encode_interned(&sample_interned())
        );
    }

    #[test]
    fn interned_empty_round_trips() {
        let empty = InternedSegmentIndex::new(0, 3);
        let decoded = decode_interned(&encode_interned(&empty), 3, 0, 0).unwrap();
        assert_eq!(decoded.entries(), 0);
        assert_eq!(decoded.tau(), 3);
        assert_eq!(decoded.interner().len(), 0);
    }

    #[test]
    fn interned_rejects_mismatches_and_corruption() {
        let encoded = encode_interned(&sample_interned());
        // Wrong tau, small universe, small length bound.
        assert!(decode_interned(&encoded, 3, 10, 10).is_err());
        assert!(decode_interned(&encoded, 2, 5, 10).is_err());
        assert!(decode_interned(&encoded, 2, 10, 9).is_err());
        // Every truncation and a padded tail.
        for cut in 0..encoded.len() {
            assert!(
                decode_interned(&encoded[..cut], 2, 10, 10).is_err(),
                "cut at {cut}"
            );
        }
        let mut padded = encoded.clone();
        padded.push(0);
        assert!(decode_interned(&padded, 2, 10, 10).is_err());
    }

    #[test]
    fn interned_rejects_structural_lies() {
        // Hand-assemble payloads the encoder would never produce. Header:
        // even scheme, τ=1.
        let header = |n_segments: u64| {
            let mut p = Vec::new();
            p.extend_from_slice(&0u32.to_le_bytes());
            p.extend_from_slice(&1u32.to_le_bytes());
            p.extend_from_slice(&n_segments.to_le_bytes());
            p
        };
        let seg_entry = |p: &mut Vec<u8>, bytes: &[u8]| {
            p.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            p.extend_from_slice(bytes);
        };
        let posting = |p: &mut Vec<u8>, l: u32, slot: u32, seg: u32, ids: &[u32]| {
            p.extend_from_slice(&l.to_le_bytes());
            p.extend_from_slice(&slot.to_le_bytes());
            p.extend_from_slice(&seg.to_le_bytes());
            p.extend_from_slice(&(ids.len() as u32).to_le_bytes());
            for &id in ids {
                p.extend_from_slice(&id.to_le_bytes());
            }
        };

        // Unsorted (and duplicate) dictionary entries.
        let mut unsorted = header(2);
        seg_entry(&mut unsorted, b"bb");
        seg_entry(&mut unsorted, b"aa");
        unsorted.extend_from_slice(&0u64.to_le_bytes());
        assert!(decode_interned(&unsorted, 1, 4, 4).is_err());
        let mut duplicate = header(2);
        seg_entry(&mut duplicate, b"aa");
        seg_entry(&mut duplicate, b"aa");
        duplicate.extend_from_slice(&0u64.to_le_bytes());
        assert!(decode_interned(&duplicate, 1, 4, 4).is_err());

        // A posting referencing a rank outside the dictionary.
        let mut out_of_range = header(1);
        seg_entry(&mut out_of_range, b"ab");
        out_of_range.extend_from_slice(&1u64.to_le_bytes());
        posting(&mut out_of_range, 4, 1, 1, &[0]);
        assert!(decode_interned(&out_of_range, 1, 4, 4).is_err());

        // A dictionary entry whose byte length lies about the geometry:
        // length-4 slot 1 under τ=1 is a 2-byte segment, not 3.
        let mut bad_geometry = header(1);
        seg_entry(&mut bad_geometry, b"abc");
        bad_geometry.extend_from_slice(&1u64.to_le_bytes());
        posting(&mut bad_geometry, 4, 1, 0, &[0]);
        assert!(decode_interned(&bad_geometry, 1, 4, 4).is_err());

        // An entry no posting references (the encoder compacts these).
        let mut unreferenced = header(2);
        seg_entry(&mut unreferenced, b"ab");
        seg_entry(&mut unreferenced, b"cd");
        unreferenced.extend_from_slice(&1u64.to_le_bytes());
        posting(&mut unreferenced, 4, 1, 0, &[0]);
        posting(&mut unreferenced, 4, 2, 0, &[0]);
        assert!(matches!(
            decode_interned(&unreferenced, 1, 4, 4),
            Err(PersistError::Corrupt { .. })
        ));

        // And the well-formed sibling of the above loads.
        let mut ok = header(2);
        seg_entry(&mut ok, b"ab");
        seg_entry(&mut ok, b"cd");
        ok.extend_from_slice(&2u64.to_le_bytes());
        posting(&mut ok, 4, 1, 0, &[0]);
        posting(&mut ok, 4, 2, 1, &[0]);
        let decoded = decode_interned(&ok, 1, 4, 4).unwrap();
        assert_eq!(
            passjoin::SegmentProbe::probe_bytes(&decoded, 4, 1, b"ab"),
            Some(&[0u32][..])
        );
    }
}
