//! Codec for `passjoin`'s segment inverted indices ([`SegmentMap`]).
//!
//! The encoding is a flat posting stream over the core crate's raw-parts
//! API:
//!
//! ```text
//! scheme: u32          (0 = even partition, 1 = left-heavy)
//! tau:    u32          (the τ the map partitions for)
//! n_postings: u64
//! n_postings × {
//!   l: u32  slot: u32  key_len: u32  n_ids: u32
//!   key bytes (key_len)
//!   ids (n_ids × u32, strictly ascending)
//! }
//! ```
//!
//! [`SegmentMap::visit_postings`] guarantees a deterministic visiting
//! order, so encoding the same index twice yields identical bytes — and
//! decoding replays each posting through
//! [`SegmentMap::restore_posting`], which re-validates the partition
//! geometry and id ordering. No string is ever re-partitioned on load:
//! that is where the load-vs-rebuild speedup comes from (restoring a
//! posting is one hash insert of a ready-made list, while a rebuild pays
//! τ+1 sorted inserts *per string*).

use passjoin::{OwnedSegmentIndex, PartitionScheme, SegmentKey, SegmentMap};
use sj_common::StringId;

use crate::error::PersistError;
use crate::format::Cursor;

fn scheme_code(scheme: PartitionScheme) -> u32 {
    match scheme {
        PartitionScheme::Even => 0,
        PartitionScheme::LeftHeavy => 1,
    }
}

fn scheme_from_code(code: u32) -> Option<PartitionScheme> {
    match code {
        0 => Some(PartitionScheme::Even),
        1 => Some(PartitionScheme::LeftHeavy),
        _ => None,
    }
}

/// Serializes a segment map (any key storage) into a section payload.
pub fn encode<K: SegmentKey>(map: &SegmentMap<K>) -> Vec<u8> {
    // Single visiting pass (each visit re-sorts every bucket for the
    // deterministic order, so walking twice to pre-count would double the
    // dominant save cost): write a placeholder count, patch it after.
    let mut out = Vec::with_capacity(64 + map.entries() as usize * 8);
    out.extend_from_slice(&scheme_code(map.scheme()).to_le_bytes());
    out.extend_from_slice(&(map.tau() as u32).to_le_bytes());
    let count_at = out.len();
    out.extend_from_slice(&0u64.to_le_bytes());
    let mut postings = 0u64;
    map.visit_postings(|l, slot, key, ids| {
        postings += 1;
        out.extend_from_slice(&(l as u32).to_le_bytes());
        out.extend_from_slice(&(slot as u32).to_le_bytes());
        out.extend_from_slice(&(key.len() as u32).to_le_bytes());
        out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
        out.extend_from_slice(key);
        for &id in ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
    });
    out[count_at..count_at + 8].copy_from_slice(&postings.to_le_bytes());
    out
}

/// Decodes a section payload into an owned segment map.
///
/// `expected_tau` cross-checks the payload against the snapshot's
/// metadata; every id must be below `universe` (the loaded string
/// table's size) and every posting length at most `max_len` (the longest
/// live string) — postings referencing ids or lengths the string table
/// cannot contain are rejected as corrupt. The length bound is also the
/// allocation guard: the per-length table is sized by the largest `l`
/// restored, so a crafted length field must be rejected *before* it can
/// force a multi-gigabyte resize.
pub fn decode(
    payload: &[u8],
    expected_tau: usize,
    universe: usize,
    max_len: usize,
) -> Result<OwnedSegmentIndex, PersistError> {
    const CONTEXT: &str = "segment postings section";
    let corrupt = |_: &'static str| PersistError::Corrupt { context: CONTEXT };

    let mut cursor = Cursor::new(payload, CONTEXT);
    let scheme = scheme_from_code(cursor.u32()?).ok_or(PersistError::Corrupt {
        context: "unknown partition scheme",
    })?;
    let tau = cursor.u32()? as usize;
    if tau != expected_tau {
        return Err(PersistError::Corrupt {
            context: "segment postings disagree with the snapshot's tau_max",
        });
    }
    let n_postings = cursor.u64()?;

    let mut map = OwnedSegmentIndex::with_scheme(0, tau, scheme);
    reserve_from_counts(&mut map, payload, cursor.position(), n_postings, max_len);
    for _ in 0..n_postings {
        let l = cursor.u32()? as usize;
        if l > max_len {
            return Err(PersistError::Corrupt {
                context: "posting length exceeds the longest live string",
            });
        }
        let slot = cursor.u32()? as usize;
        let key_len = cursor.u32()? as usize;
        let n_ids = cursor.u32()? as usize;
        let key: Box<[u8]> = cursor.bytes(key_len)?.into();
        // Cap the pre-reservation: a CRC-valid but hostile `n_ids` must not
        // trigger a huge allocation before the cursor runs out of bytes.
        let mut ids = Vec::with_capacity(n_ids.min(1 << 16));
        for _ in 0..n_ids {
            let id: StringId = cursor.u32()?;
            if (id as usize) >= universe {
                return Err(PersistError::Corrupt {
                    context: "posting id outside the string table",
                });
            }
            ids.push(id);
        }
        map.restore_posting(l, slot, key, ids).map_err(corrupt)?;
    }
    cursor.finish()?;
    Ok(map)
}

/// Skims the posting stream once, counting distinct keys per `(l, slot)`,
/// and reserves the target maps accordingly — replaying tens of thousands
/// of postings into unreserved hash maps would otherwise pay log₂(n)
/// rehash-and-move rounds, a large slice of total load time. Purely an
/// optimization: any malformed frame aborts the skim and leaves validation
/// to the decode loop.
fn reserve_from_counts(
    map: &mut OwnedSegmentIndex,
    payload: &[u8],
    start: usize,
    n_postings: u64,
    max_len: usize,
) {
    // Reserving also sizes the per-length table, so skip lengths the
    // string table cannot contain — a hostile length field must not
    // trigger a multi-gigabyte table resize before the decode loop gets
    // to reject it.
    let mut counts: Vec<((u32, u32), usize)> = Vec::new();
    let mut cursor = Cursor::new(&payload[start..], "posting skim");
    for _ in 0..n_postings {
        let Ok(l) = cursor.u32() else { return };
        let Ok(slot) = cursor.u32() else { return };
        let Ok(key_len) = cursor.u32() else { return };
        let Ok(n_ids) = cursor.u32() else { return };
        if cursor.bytes(key_len as usize + n_ids as usize * 4).is_err() {
            return;
        }
        if l as usize > max_len {
            continue;
        }
        // Postings arrive grouped by (l, slot) (the visit order), so the
        // run-length accumulation stays tiny.
        match counts.last_mut() {
            Some((coords, n)) if *coords == (l, slot) => *n += 1,
            _ => counts.push(((l, slot), 1)),
        }
    }
    for ((l, slot), n) in counts {
        map.reserve_keys(l as usize, slot as usize, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_map() -> OwnedSegmentIndex {
        let mut map = OwnedSegmentIndex::new(0, 2);
        map.insert_owned(b"aaabbbccc", 0);
        map.insert_owned(b"aaabbbccc", 4);
        map.insert_owned(b"aaabbbccd", 2);
        map.insert_owned(b"wwwxxyyzzq", 9);
        map
    }

    #[test]
    fn round_trip_preserves_probes_and_accounting() {
        let original = sample_map();
        let encoded = encode(&original);
        let decoded = decode(&encoded, 2, 10, 10).unwrap();
        assert_eq!(decoded.entries(), original.entries());
        assert_eq!(decoded.live_bytes(), original.live_bytes());
        assert_eq!(decoded.tau(), original.tau());
        original.visit_postings(|l, slot, key, ids| {
            assert_eq!(decoded.probe(l, slot, key), Some(ids));
        });
        // And nothing extra appeared.
        let mut decoded_postings = 0;
        decoded.visit_postings(|_, _, _, _| decoded_postings += 1);
        let mut original_postings = 0;
        original.visit_postings(|_, _, _, _| original_postings += 1);
        assert_eq!(decoded_postings, original_postings);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(encode(&sample_map()), encode(&sample_map()));
    }

    #[test]
    fn empty_map_round_trips() {
        let empty = OwnedSegmentIndex::new(0, 3);
        let decoded = decode(&encode(&empty), 3, 0, 0).unwrap();
        assert_eq!(decoded.entries(), 0);
        assert_eq!(decoded.tau(), 3);
    }

    #[test]
    fn rejects_mismatched_tau_and_out_of_range_ids() {
        let encoded = encode(&sample_map());
        assert!(matches!(
            decode(&encoded, 3, 10, 10),
            Err(PersistError::Corrupt { .. })
        ));
        // Universe too small for id 9.
        assert!(matches!(
            decode(&encoded, 2, 5, 10),
            Err(PersistError::Corrupt { .. })
        ));
        // Length bound too small for the 10-byte string's postings.
        assert!(matches!(
            decode(&encoded, 2, 10, 9),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn rejects_truncated_and_padded_payloads() {
        let encoded = encode(&sample_map());
        for cut in 0..encoded.len() {
            assert!(decode(&encoded[..cut], 2, 10, 10).is_err(), "cut at {cut}");
        }
        let mut padded = encoded.clone();
        padded.push(0);
        assert!(decode(&padded, 2, 10, 10).is_err());
    }
}
