//! A blocking line-protocol client: the CLI `client` subcommand and the
//! loopback tests both drive the server through this.
//!
//! [`Client`] owns one connection. Each request method writes one
//! request line and drains the response into typed [`Event`]s up to and
//! including the terminator; streaming consumers can instead walk
//! events one at a time with [`Client::read_event`].

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::json::{self, Json};
use crate::proto::{BudgetSpec, MetricsFormat};

/// One response line, decoded.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A verified match: in-line query index, string id, distance.
    Match {
        /// The query's index within its request line.
        q: u64,
        /// The matched string's id.
        id: u64,
        /// The exact edit distance.
        d: u64,
    },
    /// A query finished.
    Eoq {
        /// The query's index within its request line.
        q: u64,
        /// Matches emitted (or the count, for count-only queries).
        n: u64,
        /// Whether the scan ran to completion.
        complete: bool,
        /// The truncation reason when `complete` is false.
        reason: Option<String>,
    },
    /// The `metrics` op's payload (the raw dump text).
    Metrics(String),
    /// The success terminator with its aggregate counters.
    Done {
        /// Queries executed.
        queries: u64,
        /// Matches found.
        matches: u64,
        /// Queries truncated by a budget.
        truncated: u64,
        /// Posting entries scanned.
        candidates: u64,
        /// Edit-distance verifications run.
        verifications: u64,
    },
    /// The error terminator.
    Error {
        /// The typed code (`parse`, `bad_request`, …).
        code: String,
        /// Human-readable detail.
        msg: String,
    },
}

impl Event {
    /// True for the two terminator variants.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Event::Done { .. } | Event::Error { .. })
    }
}

/// Everything a query request can carry; maps 1:1 onto the wire fields
/// of the `query` op (see [`crate::proto`]).
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Per-line threshold (server default when `None`).
    pub tau: Option<usize>,
    /// Top-k limit per query.
    pub limit: Option<usize>,
    /// Count-only mode.
    pub count: bool,
    /// Stream matches in verification order.
    pub stream: bool,
    /// Per-query budget caps.
    pub budget: BudgetSpec,
    /// Shared budget drained across the line's queries.
    pub batch: Option<BudgetSpec>,
}

/// A blocking connection to a serve endpoint.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            writer: stream,
            reader,
        })
    }

    /// Sends one raw request line (no trailing newline needed).
    pub fn send_raw(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Reads and decodes the next response line. `Ok(None)` on EOF.
    pub fn read_event(&mut self) -> io::Result<Option<Event>> {
        let mut line = Vec::new();
        loop {
            line.clear();
            let n = self.reader.read_until(b'\n', &mut line)?;
            if n == 0 {
                return Ok(None);
            }
            let trimmed: &[u8] = line
                .strip_suffix(b"\n")
                .map(|l| l.strip_suffix(b"\r").unwrap_or(l))
                .unwrap_or(&line);
            if trimmed.is_empty() {
                continue;
            }
            return decode_event(trimmed)
                .map(Some)
                .map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg));
        }
    }

    /// Sends a raw line and drains its whole response (terminator
    /// included, as the last event).
    pub fn request_raw(&mut self, line: &str) -> io::Result<Vec<Event>> {
        self.send_raw(line)?;
        let mut events = Vec::new();
        loop {
            match self.read_event()? {
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed before the response terminator",
                    ))
                }
                Some(event) => {
                    let last = event.is_terminator();
                    events.push(event);
                    if last {
                        return Ok(events);
                    }
                }
            }
        }
    }

    /// Runs one query line over `queries` and drains the response.
    pub fn query<Q: AsRef<[u8]>>(
        &mut self,
        queries: &[Q],
        options: &QueryOptions,
    ) -> io::Result<Vec<Event>> {
        let line = build_query_line(queries, options);
        self.request_raw(&line)
    }

    /// Sends the query line without draining — use [`Client::read_event`]
    /// to walk the response at the consumer's own pace (this is what
    /// makes a client "slow" from the server's perspective).
    pub fn query_nowait<Q: AsRef<[u8]>>(
        &mut self,
        queries: &[Q],
        options: &QueryOptions,
    ) -> io::Result<()> {
        let line = build_query_line(queries, options);
        self.send_raw(&line)
    }

    /// Fetches the server's metrics dump.
    pub fn metrics(&mut self, format: MetricsFormat) -> io::Result<String> {
        let format = match format {
            MetricsFormat::Prometheus => "prometheus",
            MetricsFormat::Json => "json",
        };
        let events =
            self.request_raw(&format!("{{\"op\":\"metrics\",\"format\":\"{format}\"}}"))?;
        for event in events {
            match event {
                Event::Metrics(dump) => return Ok(dump),
                Event::Error { code, msg } => {
                    return Err(io::Error::other(format!("server error {code}: {msg}")))
                }
                _ => {}
            }
        }
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "metrics response carried no metrics line",
        ))
    }

    /// Liveness round-trip.
    pub fn ping(&mut self) -> io::Result<()> {
        let events = self.request_raw("{\"op\":\"ping\"}")?;
        match events.last() {
            Some(Event::Done { .. }) => Ok(()),
            other => Err(io::Error::other(format!(
                "unexpected ping reply: {other:?}"
            ))),
        }
    }

    /// Asks the server to shut down gracefully (it must allow it).
    pub fn shutdown(&mut self) -> io::Result<()> {
        let events = self.request_raw("{\"op\":\"shutdown\"}")?;
        match events.last() {
            Some(Event::Done { .. }) => Ok(()),
            Some(Event::Error { code, msg }) => {
                Err(io::Error::other(format!("server error {code}: {msg}")))
            }
            other => Err(io::Error::other(format!(
                "unexpected shutdown reply: {other:?}"
            ))),
        }
    }
}

/// Builds one `op:query` request line.
pub fn build_query_line<Q: AsRef<[u8]>>(queries: &[Q], options: &QueryOptions) -> String {
    use std::fmt::Write as _;

    let mut line = String::from("{\"op\":\"query\"");
    if queries.len() == 1 {
        line.push_str(",\"q\":");
        json::write_string(&mut line, queries[0].as_ref());
    } else {
        line.push_str(",\"queries\":[");
        for (i, q) in queries.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            json::write_string(&mut line, q.as_ref());
        }
        line.push(']');
    }
    let num = |line: &mut String, key: &str, value: Option<u64>| {
        if let Some(v) = value {
            write!(line, ",\"{key}\":{v}").expect("writing to a String cannot fail");
        }
    };
    num(&mut line, "tau", options.tau.map(|t| t as u64));
    num(&mut line, "limit", options.limit.map(|k| k as u64));
    if options.count {
        line.push_str(",\"count\":true");
    }
    if options.stream {
        line.push_str(",\"stream\":true");
    }
    num(&mut line, "max_verify", options.budget.max_verify);
    num(&mut line, "max_candidates", options.budget.max_candidates);
    num(&mut line, "deadline_ms", options.budget.deadline_ms);
    if let Some(batch) = &options.batch {
        line.push_str(",\"batch\":{");
        let mut first = true;
        let mut bnum = |line: &mut String, key: &str, value: Option<u64>| {
            if let Some(v) = value {
                if !first {
                    line.push(',');
                }
                first = false;
                write!(line, "\"{key}\":{v}").expect("writing to a String cannot fail");
            }
        };
        bnum(&mut line, "max_verify", batch.max_verify);
        bnum(&mut line, "max_candidates", batch.max_candidates);
        bnum(&mut line, "deadline_ms", batch.deadline_ms);
        line.push('}');
    }
    line.push('}');
    line
}

fn req_u64(obj: &Json, key: &'static str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("response field {key} missing or not an integer"))
}

fn decode_event(line: &[u8]) -> Result<Event, String> {
    let value = json::parse(line).map_err(|e| format!("bad response line: {e}"))?;
    if let Some(eoq) = value.get("eoq") {
        return Ok(Event::Eoq {
            q: req_u64(eoq, "q")?,
            n: req_u64(eoq, "n")?,
            complete: eoq
                .get("complete")
                .and_then(Json::as_bool)
                .ok_or("eoq without complete")?,
            reason: eoq
                .get("reason")
                .and_then(Json::as_str)
                .map(|r| String::from_utf8_lossy(r).into_owned()),
        });
    }
    if let Some(done) = value.get("done") {
        return Ok(Event::Done {
            queries: req_u64(done, "queries")?,
            matches: req_u64(done, "matches")?,
            truncated: req_u64(done, "truncated")?,
            candidates: req_u64(done, "candidates")?,
            verifications: req_u64(done, "verifications")?,
        });
    }
    if let Some(error) = value.get("error") {
        let field = |key: &'static str| {
            error
                .get(key)
                .and_then(Json::as_str)
                .map(|v| String::from_utf8_lossy(v).into_owned())
                .ok_or_else(|| format!("error terminator without {key}"))
        };
        return Ok(Event::Error {
            code: field("code")?,
            msg: field("msg")?,
        });
    }
    if let Some(metrics) = value.get("metrics") {
        let dump = metrics.as_str().ok_or("metrics payload must be a string")?;
        return Ok(Event::Metrics(String::from_utf8_lossy(dump).into_owned()));
    }
    if value.get("q").is_some() {
        return Ok(Event::Match {
            q: req_u64(&value, "q")?,
            id: req_u64(&value, "id")?,
            d: req_u64(&value, "d")?,
        });
    }
    Err(format!(
        "unrecognized response line: {}",
        String::from_utf8_lossy(line)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_lines_round_trip_through_the_parser() {
        let options = QueryOptions {
            tau: Some(2),
            limit: Some(5),
            count: false,
            stream: true,
            budget: BudgetSpec {
                max_verify: Some(100),
                max_candidates: None,
                deadline_ms: Some(50),
            },
            batch: Some(BudgetSpec {
                max_verify: Some(500),
                max_candidates: None,
                deadline_ms: None,
            }),
        };
        let line = build_query_line(&[b"jim gray".as_slice(), b"ed codd"], &options);
        let parsed = crate::proto::parse_request(line.as_bytes(), 16).unwrap();
        let crate::proto::Request::Query(spec) = parsed else {
            panic!("expected a query")
        };
        assert_eq!(
            spec.queries,
            vec![b"jim gray".to_vec(), b"ed codd".to_vec()]
        );
        assert_eq!(spec.tau, Some(2));
        assert_eq!(spec.limit, Some(5));
        assert!(spec.stream && !spec.count);
        assert_eq!(spec.budget.max_verify, Some(100));
        assert_eq!(spec.budget.deadline_ms, Some(50));
        assert_eq!(spec.batch.unwrap().max_verify, Some(500));

        // Single query uses the "q" form.
        let line = build_query_line(&[b"solo".as_slice()], &QueryOptions::default());
        assert!(line.contains("\"q\":\"solo\""));
        assert!(!line.contains("queries"));
    }

    #[test]
    fn decodes_every_event_shape() {
        assert_eq!(
            decode_event(br#"{"q":0,"id":17,"d":1}"#).unwrap(),
            Event::Match { q: 0, id: 17, d: 1 }
        );
        assert_eq!(
            decode_event(br#"{"eoq":{"q":1,"n":9,"complete":false,"reason":"deadline"}}"#).unwrap(),
            Event::Eoq {
                q: 1,
                n: 9,
                complete: false,
                reason: Some("deadline".into())
            }
        );
        assert_eq!(
            decode_event(
                br#"{"done":{"queries":2,"matches":1,"truncated":0,"candidates":5,"verifications":3}}"#
            )
            .unwrap(),
            Event::Done {
                queries: 2,
                matches: 1,
                truncated: 0,
                candidates: 5,
                verifications: 3
            }
        );
        assert_eq!(
            decode_event(br#"{"error":{"code":"parse","msg":"bad"}}"#).unwrap(),
            Event::Error {
                code: "parse".into(),
                msg: "bad".into()
            }
        );
        assert!(matches!(
            decode_event(br#"{"metrics":"a 1\nb 2"}"#).unwrap(),
            Event::Metrics(dump) if dump == "a 1\nb 2"
        ));
        assert!(decode_event(b"{\"what\":1}").is_err());
        assert!(decode_event(b"garbage").is_err());
    }
}
