//! A minimal hand-rolled JSON layer for the wire protocol.
//!
//! The build environment is std-only (no serde), and the protocol needs
//! very little: flat objects with string, integer, boolean, array, and
//! null values. This module provides exactly that — a recursive-descent
//! parser into a [`Json`] value plus an escaping writer — with one
//! deliberate deviation from RFC 8259: **strings are byte strings**.
//!
//! Queries and corpus strings are arbitrary bytes (the engine matches
//! `&[u8]`, not `str`), so JSON strings here map bytes 1:1: on output,
//! bytes ≥ 0x80 and controls are escaped as `\u00XX`; on input, any
//! `\uXXXX` escape with `XXXX ≤ 00FF` decodes to that single *byte* (and
//! larger code points decode to their UTF-8 bytes). ASCII round-trips as
//! itself, and any byte string round-trips exactly — which is what keeps
//! the server's output byte-identical to the offline CLI's for any
//! corpus. Both ends of the protocol are in this crate, so the deviation
//! never meets a strict decoder.

use std::fmt;

/// A parsed JSON value (strings are byte strings — see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that lexed as an integer (no `.`, `e`, or sign overflow).
    Int(i64),
    /// Any other number. The protocol's numeric fields are integral, so
    /// a float where an integer is required is a type error — kept as a
    /// distinct variant so that check is exact, not a lossy cast.
    Float(f64),
    /// A (byte) string.
    Str(Vec<u8>),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source order (the protocol's objects are tiny, so
    /// lookup is a linear scan — no map dependency).
    Object(Vec<(Vec<u8>, Json)>),
}

impl Json {
    /// Looks up `key` in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields
                .iter()
                .find(|(k, _)| k.as_slice() == key.as_bytes())
                .map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a byte string, if it is one.
    pub fn as_str(&self) -> Option<&[u8]> {
        match self {
            Json::Str(bytes) => Some(bytes),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Why a line failed to parse, with the byte offset of the failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What was wrong.
    pub message: &'static str,
    /// Byte offset into the input where parsing failed.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

/// Parses one complete JSON value from `input` (surrounding whitespace is
/// allowed, trailing garbage is an error).
pub fn parse(input: &[u8]) -> Result<Json, JsonError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            message,
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &[u8], message: &'static str) -> Result<(), JsonError> {
        if self.input[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self
                .literal(b"true", "invalid literal")
                .map(|()| Json::Bool(true)),
            Some(b'f') => self
                .literal(b"false", "invalid literal")
                .map(|()| Json::Bool(false)),
            Some(b'n') => self
                .literal(b"null", "invalid literal")
                .map(|()| Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Object(fields)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<Vec<u8>, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = Vec::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0C),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        if code <= 0xFF {
                            // Byte transparency: \u00XX is the byte XX.
                            out.push(code as u8);
                        } else if let Some(c) = char::from_u32(code) {
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        } else {
                            return Err(self.err("invalid \\u escape"));
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) => out.push(b),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Appends `bytes` to `out` as a quoted JSON string, escaping quotes,
/// backslashes, controls, and every non-ASCII byte (as `\u00XX`, which
/// [`parse`] decodes back to the byte — see the module docs).
pub fn write_string(out: &mut String, bytes: &[u8]) {
    use fmt::Write as _;
    out.push('"');
    for &b in bytes {
        match b {
            b'"' => out.push_str("\\\""),
            b'\\' => out.push_str("\\\\"),
            0x08 => out.push_str("\\b"),
            0x0C => out.push_str("\\f"),
            b'\n' => out.push_str("\\n"),
            b'\r' => out.push_str("\\r"),
            b'\t' => out.push_str("\\t"),
            0x00..=0x1F | 0x7F..=0xFF => {
                write!(out, "\\u{:04x}", b).expect("writing to a String cannot fail")
            }
            _ => out.push(b as char),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse(b"null").unwrap(), Json::Null);
        assert_eq!(parse(b"true").unwrap(), Json::Bool(true));
        assert_eq!(parse(b"false").unwrap(), Json::Bool(false));
        assert_eq!(parse(b"42").unwrap(), Json::Int(42));
        assert_eq!(parse(b"-7").unwrap(), Json::Int(-7));
        assert_eq!(parse(b"1.5").unwrap(), Json::Float(1.5));
        assert_eq!(parse(b"1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(parse(b"\"hi\"").unwrap(), Json::Str(b"hi".to_vec()));
    }

    #[test]
    fn parses_structures_and_lookup() {
        let v = parse(br#" {"op":"query","q":"ab","tau":2,"ids":[1,2]} "#).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some(&b"query"[..]));
        assert_eq!(v.get("tau").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("ids").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("missing"), None);
        assert_eq!(parse(b"{}").unwrap(), Json::Object(vec![]));
        assert_eq!(parse(b"[]").unwrap(), Json::Array(vec![]));
    }

    #[test]
    fn escapes_round_trip_bytes_exactly() {
        // Every byte value survives write → parse unchanged.
        let all: Vec<u8> = (0u8..=255).collect();
        let mut encoded = String::new();
        write_string(&mut encoded, &all);
        assert_eq!(parse(encoded.as_bytes()).unwrap(), Json::Str(all));
    }

    #[test]
    fn standard_escapes_decode() {
        assert_eq!(
            parse(br#""a\"b\\c\/d\n\t\r\b\f""#).unwrap(),
            Json::Str(b"a\"b\\c/d\n\t\r\x08\x0C".to_vec())
        );
        // \u00XX is a byte; larger code points are UTF-8.
        assert_eq!(parse(br#""\u00e9""#).unwrap(), Json::Str(vec![0xE9]));
        assert_eq!(
            parse(br#""\u20ac""#).unwrap(),
            Json::Str("€".as_bytes().to_vec())
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            &b"{"[..],
            b"{\"a\"",
            b"{\"a\":}",
            b"[1,]",
            b"\"unterminated",
            b"tru",
            b"1 2",
            b"{\"a\":1,}",
            b"\"\\u12\"",
            b"\"\\x\"",
            b"",
        ] {
            assert!(parse(bad).is_err(), "{:?} should fail", bad);
        }
        let err = parse(b"{\"a\":!}").unwrap_err();
        assert!(err.at > 0 && err.to_string().contains("byte"));
    }

    #[test]
    fn floats_do_not_masquerade_as_integers() {
        assert_eq!(parse(b"2.0").unwrap().as_u64(), None);
        assert_eq!(parse(b"-1").unwrap().as_u64(), None);
        assert_eq!(
            parse(b"9007199254740993").unwrap().as_u64(),
            Some(9007199254740993)
        );
    }
}
