//! A std-only network query service over the `passjoin-online`
//! [`Queryable`](passjoin_online::Queryable) surface.
//!
//! The serve crate turns any corpus-backed `OnlineIndex` or mmap'd
//! `Snapshot` into a small TCP service speaking a line-oriented JSON
//! protocol (JSONL): each request is one JSON object on one line, and
//! each response is a sequence of lines finished by exactly one
//! terminator — `{"done":…}` on success, `{"error":…}` on failure.
//! There are no dependencies beyond `std`; the JSON codec is
//! hand-rolled in [`json`] and is *byte-transparent* (non-ASCII bytes
//! travel as `\u00XX` escapes), so network answers are byte-identical
//! to offline answers for any corpus, not just UTF-8 ones.
//!
//! The moving pieces:
//!
//! - [`json`] — the minimal byte-string JSON codec.
//! - [`proto`] — wire-level request parsing and response formatting,
//!   shared by server and client so the two cannot drift.
//! - [`Server`] — `std::net::TcpListener` + a bounded
//!   thread-per-connection pool (`std::thread::scope`), graceful
//!   shutdown that drains in-flight connections, per-connection limits
//!   (line length, batch size, read/write timeouts), and per-request
//!   [`ExecBudget`](passjoin_online::ExecBudget)s clamped by a server
//!   ceiling.
//! - [`Client`] — a blocking client used by the CLI `client`
//!   subcommand and the loopback tests.
//!
//! Streaming responses (`"stream":true`) run the engine on a separate
//! scoped thread and hand matches to the connection writer through the
//! bounded [`pull_channel`](passjoin_online::pull_channel): when the
//! socket is slow the channel fills and the *engine* blocks, so a slow
//! reader can never force unbounded buffering on the server. The
//! high-water mark of that channel is exported as the
//! `passjoin_server_stream_buffered_peak` gauge, which is how the
//! loopback suite pins the boundedness claim.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
pub mod proto;

mod client;
mod server;

pub use client::{build_query_line, Client, Event, QueryOptions};
pub use server::{ServeObs, Server, ServerConfig, ShutdownHandle};
