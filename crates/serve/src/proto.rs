//! The JSONL wire protocol: request parsing and response formatting.
//!
//! Every request is **one line** of JSON; every response is one or more
//! lines of JSON ending in exactly one *terminator* line — `{"done":…}`
//! on success, `{"error":…}` on failure. Empty lines are ignored. The
//! connection survives errors: a malformed line costs that line only.
//!
//! # Requests
//!
//! ```text
//! {"op":"query","q":"jim gray","tau":2}
//! {"op":"query","queries":["a","b"],"tau":1,"limit":5,"count":false,
//!  "stream":true,"max_verify":1000,"max_candidates":5000,"deadline_ms":50,
//!  "batch":{"max_verify":2000,"deadline_ms":100}}
//! {"op":"metrics","format":"prometheus"}   // or "json"
//! {"op":"ping"}
//! {"op":"shutdown"}
//! ```
//!
//! `q` (one query) and `queries` (a batch) are mutually exclusive;
//! budgets are optional and are clamped by the server's ceiling; `batch`
//! attaches a *shared* budget drained across the whole line's queries.
//!
//! # Responses
//!
//! ```text
//! {"q":0,"id":17,"d":1}                    // one verified match
//! {"eoq":{"q":0,"n":2,"complete":true}}    // end of query 0
//! {"eoq":{"q":1,"n":9,"complete":false,"reason":"verification cap"}}
//! {"metrics":"…escaped dump…"}             // reply to op:metrics
//! {"done":{"queries":2,"matches":11,"truncated":1,
//!          "candidates":123,"verifications":45}}
//! {"error":{"code":"bad_request","msg":"tau 9 exceeds tau_max 2"}}
//! ```
//!
//! Match lines carry the in-line query index `q`; count-only queries
//! emit only their `eoq` (with `n` = the count). Non-streamed plain
//! queries list matches ascending by id, `limit` queries ascending by
//! `(distance, id)` — exactly the offline `Queryable` order — while
//! `stream:true` plain queries emit in verification order.

use passjoin_online::{Completion, ExecStats, QueryOutcome};

use crate::json::{self, Json};

/// Error codes a response terminator can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON.
    Parse,
    /// The line was valid JSON but not a valid request (unknown op,
    /// missing/incompatible fields, τ above the index's τ_max, …).
    BadRequest,
    /// The line exceeded the server's `max_line_bytes`.
    LineTooLong,
    /// The `queries` array exceeded the server's `max_batch`.
    BatchTooLarge,
}

impl ErrorCode {
    /// The wire form of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::LineTooLong => "line_too_long",
            ErrorCode::BatchTooLarge => "batch_too_large",
        }
    }
}

/// The format the `metrics` op dumps the registry in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// Prometheus text exposition (the default).
    #[default]
    Prometheus,
    /// The registry's JSON dump.
    Json,
}

/// Budget caps as they appear on the wire (a request's own, or the
/// shared `batch` budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BudgetSpec {
    /// `max_verify`: cap on edit-distance verifications.
    pub max_verify: Option<u64>,
    /// `max_candidates`: cap on scanned posting entries.
    pub max_candidates: Option<u64>,
    /// `deadline_ms`: wall-clock deadline, milliseconds from receipt.
    pub deadline_ms: Option<u64>,
}

impl BudgetSpec {
    /// True when no field is set.
    pub fn is_empty(&self) -> bool {
        self.max_verify.is_none() && self.max_candidates.is_none() && self.deadline_ms.is_none()
    }
}

/// A parsed `op:query` request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    /// The queries on this line (one for `q`, many for `queries`).
    pub queries: Vec<Vec<u8>>,
    /// `tau`: per-line threshold; `None` defers to the server default.
    pub tau: Option<usize>,
    /// `limit`: top-k per query.
    pub limit: Option<usize>,
    /// `count`: count-only (no match lines, `eoq.n` carries the count).
    pub count: bool,
    /// `stream`: emit matches as verified (verification order) instead
    /// of buffered and sorted.
    pub stream: bool,
    /// Per-query budget caps (each query gets its own).
    pub budget: BudgetSpec,
    /// Shared budget drained across all queries on this line.
    pub batch: Option<BudgetSpec>,
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `op:query` — execute similarity queries.
    Query(QuerySpec),
    /// `op:metrics` — dump the server's metrics registry.
    Metrics(MetricsFormat),
    /// `op:ping` — liveness check; responds with an empty `done`.
    Ping,
    /// `op:shutdown` — ask the server to shut down gracefully (honoured
    /// only when the server enables it).
    Shutdown,
}

/// A request parse failure: the typed code plus a human message, ready
/// to format as an error terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// The typed code.
    pub code: ErrorCode,
    /// Human-readable detail for the `msg` field.
    pub msg: String,
}

impl RequestError {
    fn bad(msg: impl Into<String>) -> Self {
        Self {
            code: ErrorCode::BadRequest,
            msg: msg.into(),
        }
    }
}

fn field_u64(obj: &Json, key: &'static str) -> Result<Option<u64>, RequestError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| RequestError::bad(format!("{key} must be a non-negative integer"))),
    }
}

/// Ceiling for `tau`/`limit` on the wire. String ids are `u32`, so a
/// threshold or top-k limit beyond `u32::MAX` can never be meaningful —
/// and the same check keeps the value inside `usize` on 32-bit targets.
const WIRE_SIZE_MAX: u64 = u32::MAX as u64;

/// Like [`field_u64`], but bounded by [`WIRE_SIZE_MAX`] — a `u64::MAX`
/// tau on the wire must be a typed `bad_request`, never a silent `as`
/// wrap (which truncates on 32-bit targets and otherwise smuggles an
/// absurd-but-legal value into the engine).
fn field_usize(obj: &Json, key: &'static str) -> Result<Option<usize>, RequestError> {
    match field_u64(obj, key)? {
        None => Ok(None),
        Some(v) if v > WIRE_SIZE_MAX => Err(RequestError::bad(format!(
            "{key} = {v} is out of range (maximum {WIRE_SIZE_MAX})"
        ))),
        Some(v) => Ok(Some(v as usize)),
    }
}

fn field_bool(obj: &Json, key: &'static str) -> Result<bool, RequestError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| RequestError::bad(format!("{key} must be a boolean"))),
    }
}

fn budget_fields(obj: &Json) -> Result<BudgetSpec, RequestError> {
    Ok(BudgetSpec {
        max_verify: field_u64(obj, "max_verify")?,
        max_candidates: field_u64(obj, "max_candidates")?,
        deadline_ms: field_u64(obj, "deadline_ms")?,
    })
}

/// Parses one request line. `max_batch` bounds the `queries` array (the
/// typed [`ErrorCode::BatchTooLarge`] outcome).
pub fn parse_request(line: &[u8], max_batch: usize) -> Result<Request, RequestError> {
    let value = json::parse(line).map_err(|e| RequestError {
        code: ErrorCode::Parse,
        msg: e.to_string(),
    })?;
    if !matches!(value, Json::Object(_)) {
        return Err(RequestError {
            code: ErrorCode::Parse,
            msg: "request must be a JSON object".into(),
        });
    }
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| RequestError::bad("missing or non-string \"op\""))?;
    match op {
        b"ping" => Ok(Request::Ping),
        b"shutdown" => Ok(Request::Shutdown),
        b"metrics" => {
            let format = match value.get("format").and_then(Json::as_str) {
                None => MetricsFormat::Prometheus,
                Some(b"prometheus") => MetricsFormat::Prometheus,
                Some(b"json") => MetricsFormat::Json,
                Some(_) => {
                    return Err(RequestError::bad(
                        "format must be \"prometheus\" or \"json\"",
                    ))
                }
            };
            Ok(Request::Metrics(format))
        }
        b"query" => {
            let queries = match (value.get("q"), value.get("queries")) {
                (Some(_), Some(_)) => {
                    return Err(RequestError::bad("\"q\" and \"queries\" are exclusive"))
                }
                (Some(q), None) => {
                    let q = q
                        .as_str()
                        .ok_or_else(|| RequestError::bad("q must be a string"))?;
                    vec![q.to_vec()]
                }
                (None, Some(qs)) => {
                    let items = qs
                        .as_array()
                        .ok_or_else(|| RequestError::bad("queries must be an array"))?;
                    if items.len() > max_batch {
                        return Err(RequestError {
                            code: ErrorCode::BatchTooLarge,
                            msg: format!(
                                "batch of {} queries exceeds the per-line maximum of {max_batch}",
                                items.len()
                            ),
                        });
                    }
                    items
                        .iter()
                        .map(|item| {
                            item.as_str().map(<[u8]>::to_vec).ok_or_else(|| {
                                RequestError::bad("queries must contain only strings")
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?
                }
                (None, None) => {
                    return Err(RequestError::bad("query op needs \"q\" or \"queries\""))
                }
            };
            let batch = match value.get("batch") {
                None | Some(Json::Null) => None,
                Some(obj @ Json::Object(_)) => Some(budget_fields(obj)?),
                Some(_) => return Err(RequestError::bad("batch must be an object")),
            };
            Ok(Request::Query(QuerySpec {
                queries,
                tau: field_usize(&value, "tau")?,
                limit: field_usize(&value, "limit")?,
                count: field_bool(&value, "count")?,
                stream: field_bool(&value, "stream")?,
                budget: budget_fields(&value)?,
                batch,
            }))
        }
        other => Err(RequestError::bad(format!(
            "unknown op {:?}",
            String::from_utf8_lossy(other)
        ))),
    }
}

// ---------------------------------------------------------------------
// Response formatting. Every helper returns one full line *without* the
// trailing newline; the connection layer appends it.
// ---------------------------------------------------------------------

/// Formats one match line: `{"q":Q,"id":I,"d":D}`.
pub fn match_line(q: usize, id: u32, dist: usize) -> String {
    format!("{{\"q\":{q},\"id\":{id},\"d\":{dist}}}")
}

/// Formats the end-of-query line for query `q`: its match/count `n` and
/// whether the scan completed (with the truncation reason otherwise).
pub fn eoq_line(q: usize, n: usize, completion: &Completion) -> String {
    match completion {
        Completion::Complete => format!("{{\"eoq\":{{\"q\":{q},\"n\":{n},\"complete\":true}}}}"),
        Completion::Truncated { reason } => {
            let mut line =
                format!("{{\"eoq\":{{\"q\":{q},\"n\":{n},\"complete\":false,\"reason\":");
            json::write_string(&mut line, reason.to_string().as_bytes());
            line.push_str("}}");
            line
        }
    }
}

/// Aggregates the wire totals of one request's outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DoneSummary {
    /// Queries executed on this line.
    pub queries: u64,
    /// Matches found (counts for count-only queries).
    pub matches: u64,
    /// Queries whose budget (own or shared) tripped.
    pub truncated: u64,
    /// Posting entries scanned across the line.
    pub candidates: u64,
    /// Edit-distance verifications across the line (both lanes).
    pub verifications: u64,
}

impl DoneSummary {
    /// Accumulates one query's outcome.
    pub fn absorb(&mut self, outcome: &QueryOutcome) {
        self.queries += 1;
        self.matches += outcome.count as u64;
        if !outcome.completion.is_complete() {
            self.truncated += 1;
        }
        let ExecStats {
            candidates,
            verifications,
            short_checked,
            ..
        } = outcome.stats;
        self.candidates += candidates;
        self.verifications += verifications + short_checked;
    }
}

/// Formats the success terminator.
pub fn done_line(summary: &DoneSummary) -> String {
    format!(
        "{{\"done\":{{\"queries\":{},\"matches\":{},\"truncated\":{},\"candidates\":{},\"verifications\":{}}}}}",
        summary.queries, summary.matches, summary.truncated, summary.candidates, summary.verifications
    )
}

/// Formats the error terminator.
pub fn error_line(code: ErrorCode, msg: &str) -> String {
    let mut line = String::from("{\"error\":{\"code\":");
    json::write_string(&mut line, code.as_str().as_bytes());
    line.push_str(",\"msg\":");
    json::write_string(&mut line, msg.as_bytes());
    line.push_str("}}");
    line
}

/// Formats the metrics payload line (the dump rides as one escaped
/// string so the JSONL framing survives embedded newlines).
pub fn metrics_line(dump: &str) -> String {
    let mut line = String::from("{\"metrics\":");
    json::write_string(&mut line, dump.as_bytes());
    line.push('}');
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use passjoin::sink::TruncationReason;

    #[test]
    fn parses_minimal_and_full_query() {
        let req = parse_request(br#"{"op":"query","q":"ab"}"#, 10).unwrap();
        let Request::Query(spec) = req else {
            panic!("expected a query")
        };
        assert_eq!(spec.queries, vec![b"ab".to_vec()]);
        assert_eq!(spec.tau, None);
        assert!(!spec.count && !spec.stream);
        assert!(spec.budget.is_empty() && spec.batch.is_none());

        let req = parse_request(
            br#"{"op":"query","queries":["a","b"],"tau":2,"limit":5,"count":true,"stream":true,"max_verify":9,"max_candidates":7,"deadline_ms":50,"batch":{"max_verify":100}}"#,
            10,
        )
        .unwrap();
        let Request::Query(spec) = req else {
            panic!("expected a query")
        };
        assert_eq!(spec.queries.len(), 2);
        assert_eq!(spec.tau, Some(2));
        assert_eq!(spec.limit, Some(5));
        assert!(spec.count && spec.stream);
        assert_eq!(spec.budget.max_verify, Some(9));
        assert_eq!(spec.budget.max_candidates, Some(7));
        assert_eq!(spec.budget.deadline_ms, Some(50));
        assert_eq!(spec.batch.unwrap().max_verify, Some(100));
    }

    #[test]
    fn parses_other_ops() {
        assert_eq!(
            parse_request(br#"{"op":"ping"}"#, 1).unwrap(),
            Request::Ping
        );
        assert_eq!(
            parse_request(br#"{"op":"shutdown"}"#, 1).unwrap(),
            Request::Shutdown
        );
        assert_eq!(
            parse_request(br#"{"op":"metrics"}"#, 1).unwrap(),
            Request::Metrics(MetricsFormat::Prometheus)
        );
        assert_eq!(
            parse_request(br#"{"op":"metrics","format":"json"}"#, 1).unwrap(),
            Request::Metrics(MetricsFormat::Json)
        );
    }

    #[test]
    fn typed_errors_for_bad_requests() {
        let cases: [(&[u8], ErrorCode); 11] = [
            (b"not json", ErrorCode::Parse),
            (b"[1]", ErrorCode::Parse),
            (br#"{"op":"nope"}"#, ErrorCode::BadRequest),
            (br#"{"op":"query"}"#, ErrorCode::BadRequest),
            (
                br#"{"op":"query","q":"a","queries":["b"]}"#,
                ErrorCode::BadRequest,
            ),
            (br#"{"op":"query","q":"a","tau":-1}"#, ErrorCode::BadRequest),
            (
                br#"{"op":"query","q":"a","tau":1.5}"#,
                ErrorCode::BadRequest,
            ),
            // Out-of-range integers are rejected at parse time, never
            // silently wrapped by an `as usize` cast.
            (
                br#"{"op":"query","q":"a","tau":18446744073709551615}"#,
                ErrorCode::BadRequest,
            ),
            (
                br#"{"op":"query","q":"a","tau":4294967296}"#,
                ErrorCode::BadRequest,
            ),
            (
                br#"{"op":"query","q":"a","limit":18446744073709551615}"#,
                ErrorCode::BadRequest,
            ),
            (
                br#"{"op":"query","queries":["a","b","c"]}"#,
                ErrorCode::BatchTooLarge,
            ),
        ];
        for (line, code) in cases {
            let err = parse_request(line, 2).unwrap_err();
            assert_eq!(err.code, code, "line {:?}", String::from_utf8_lossy(line));
            assert!(!err.msg.is_empty());
        }

        // The ceiling itself is legal: u32::MAX parses (the *semantic*
        // tau-vs-τ_max check lives in the server, not the parser).
        let spec = match parse_request(br#"{"op":"query","q":"a","tau":4294967295}"#, 2) {
            Ok(Request::Query(spec)) => spec,
            other => panic!("expected a query, got {other:?}"),
        };
        assert_eq!(spec.tau, Some(u32::MAX as usize));
    }

    #[test]
    fn response_lines_are_valid_json() {
        use crate::json;

        let lines = [
            match_line(0, 17, 1),
            eoq_line(0, 2, &Completion::Complete),
            eoq_line(
                1,
                9,
                &Completion::Truncated {
                    reason: TruncationReason::VerificationCap,
                },
            ),
            done_line(&DoneSummary {
                queries: 2,
                matches: 11,
                truncated: 1,
                candidates: 123,
                verifications: 45,
            }),
            error_line(ErrorCode::LineTooLong, "line of 70000 bytes"),
            metrics_line("passjoin_requests_total 5\nline two \"quoted\""),
        ];
        for line in &lines {
            let parsed = json::parse(line.as_bytes());
            assert!(parsed.is_ok(), "{line} must parse: {parsed:?}");
        }
        assert_eq!(lines[0], r#"{"q":0,"id":17,"d":1}"#);
        assert!(lines[2].contains("\"reason\":\"verification cap\""));
    }

    #[test]
    fn summary_absorbs_outcomes() {
        let mut summary = DoneSummary::default();
        summary.absorb(&QueryOutcome {
            count: 3,
            completion: Completion::Truncated {
                reason: TruncationReason::Deadline,
            },
            stats: ExecStats {
                candidates: 10,
                verifications: 4,
                short_checked: 2,
                ..ExecStats::default()
            },
            ..QueryOutcome::default()
        });
        summary.absorb(&QueryOutcome::default());
        assert_eq!(summary.queries, 2);
        assert_eq!(summary.matches, 3);
        assert_eq!(summary.truncated, 1);
        assert_eq!(summary.candidates, 10);
        assert_eq!(summary.verifications, 6);
    }
}
