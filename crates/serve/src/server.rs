//! The TCP server: bounded thread-per-connection over `&dyn Queryable`.
//!
//! std-only by constraint (no async runtime is available), the server
//! pairs a non-blocking accept loop with a scoped thread per connection,
//! bounded by [`ServerConfig::max_connections`] — excess connections wait
//! in the OS backlog. Each connection speaks the line protocol
//! ([`crate::proto`]): requests execute inline on the connection's
//! thread against the shared source, so the connection cap is also the
//! query-concurrency cap.
//!
//! **Backpressure** (the design constraint from the roadmap): streamed
//! responses never buffer more than [`ServerConfig::stream_buffer`]
//! matches server-side. The engine runs on a helper thread pushing into
//! a bounded [`pull_channel`]; the connection thread pulls and writes.
//! A slow socket fills the channel and *blocks the engine* (bounded
//! memory); a dead socket drops the receiver, which saturates the
//! engine's sink and aborts the scan (bounded work).
//!
//! **Budgets**: client-requested caps are intersected with the server's
//! ceiling via [`ExecBudget::clamped_by`] — a client can only tighten.
//! Deadlines come from one long-lived [`WallClockTicks`] source shared
//! by every request (a per-request source would leak a timer thread).
//!
//! **Graceful shutdown**: a [`ShutdownHandle`] (or the protocol's
//! `shutdown` op, when enabled) stops the accept loop; in-flight
//! connections drain — their current request completes and the
//! connection closes after a farewell read cycle.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use passjoin::sink::MatchSink;
use passjoin_obs::{Counter, Gauge, Registry};
use passjoin_online::{
    wall_deadline, BatchBudget, ExecBudget, QueryOutcome, Queryable, SearchRequest, WallClockTicks,
};
use sj_common::StringId;

use crate::proto::{self, DoneSummary, ErrorCode, MetricsFormat, QuerySpec, Request, RequestError};

/// Server limits and policy knobs. `Default` is sized for tests and
/// small deployments; the CLI overrides what its flags expose.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent connections (= concurrent in-flight requests).
    pub max_connections: usize,
    /// Longest accepted request line, in bytes; longer lines get a
    /// `line_too_long` error and are discarded to the next newline.
    pub max_line_bytes: usize,
    /// Most queries one request line may carry.
    pub max_batch: usize,
    /// Idle time after which a silent connection is closed.
    pub read_timeout: Duration,
    /// Per-write timeout; a socket stuck longer is treated as dead.
    pub write_timeout: Duration,
    /// Streamed-response channel capacity: the most matches ever
    /// buffered server-side per streaming request.
    pub stream_buffer: usize,
    /// τ used by query lines that do not set one.
    pub default_tau: usize,
    /// Server-side verification-cap ceiling applied to every query.
    pub max_verify_ceiling: Option<u64>,
    /// Server-side candidate-cap ceiling applied to every query.
    pub max_candidates_ceiling: Option<u64>,
    /// Server-side deadline ceiling (milliseconds) applied to every
    /// query line.
    pub deadline_ms_ceiling: Option<u64>,
    /// Whether the protocol `shutdown` op is honoured (loopback tools
    /// and tests); when false it is a `bad_request` error.
    pub allow_shutdown: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 8,
            max_line_bytes: 64 * 1024,
            max_batch: 1024,
            read_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(30),
            stream_buffer: 256,
            default_tau: 1,
            max_verify_ceiling: None,
            max_candidates_ceiling: None,
            deadline_ms_ceiling: None,
            allow_shutdown: false,
        }
    }
}

/// The server's metric handles, pre-registered into a shared
/// [`Registry`] (the same one the engine's `EngineObs` writes to, so the
/// `metrics` op dumps both in one scrape).
///
/// | metric | kind | meaning |
/// |---|---|---|
/// | `passjoin_server_connections_total` | counter | connections accepted |
/// | `passjoin_server_connections_inflight` | gauge | connections currently open |
/// | `passjoin_server_requests_total` | counter | request lines parsed and executed |
/// | `passjoin_server_request_errors_total` | counter | request lines answered with an error |
/// | `passjoin_server_queries_total` | counter | individual queries executed |
/// | `passjoin_server_matches_total` | counter | matches sent to clients |
/// | `passjoin_server_bytes_read_total` | counter | bytes read from clients |
/// | `passjoin_server_bytes_written_total` | counter | bytes written to clients |
/// | `passjoin_server_stream_buffered_peak` | gauge | largest streamed-response queue observed |
#[derive(Debug, Clone)]
pub struct ServeObs {
    /// Connections accepted.
    pub connections_total: Counter,
    /// Connections currently open.
    pub connections_inflight: Gauge,
    /// Request lines parsed and executed.
    pub requests_total: Counter,
    /// Request lines answered with an error terminator.
    pub request_errors_total: Counter,
    /// Individual queries executed.
    pub queries_total: Counter,
    /// Matches sent to clients.
    pub matches_total: Counter,
    /// Bytes read from clients.
    pub bytes_read_total: Counter,
    /// Bytes written to clients.
    pub bytes_written_total: Counter,
    /// Largest streamed-response queue length observed (bounded by
    /// [`ServerConfig::stream_buffer`] — the backpressure invariant).
    pub stream_buffered_peak: Gauge,
}

impl ServeObs {
    /// Registers (or re-attaches to) the server metrics in `registry`.
    pub fn register(registry: &Registry) -> Self {
        Self {
            connections_total: registry.counter("passjoin_server_connections_total"),
            connections_inflight: registry.gauge("passjoin_server_connections_inflight"),
            requests_total: registry.counter("passjoin_server_requests_total"),
            request_errors_total: registry.counter("passjoin_server_request_errors_total"),
            queries_total: registry.counter("passjoin_server_queries_total"),
            matches_total: registry.counter("passjoin_server_matches_total"),
            bytes_read_total: registry.counter("passjoin_server_bytes_read_total"),
            bytes_written_total: registry.counter("passjoin_server_bytes_written_total"),
            stream_buffered_peak: registry.gauge("passjoin_server_stream_buffered_peak"),
        }
    }

    fn note_stream_peak(&self, high_water: u64) {
        // Monotone max; a lost race between connections only under-reports
        // momentarily and the next scrape catches up.
        if (high_water as i64) > self.stream_buffered_peak.get() {
            self.stream_buffered_peak.set(high_water as i64);
        }
    }
}

/// Signals a running [`Server`] to stop accepting and drain; cloneable
/// and usable from any thread (a ctrl-c handler, the protocol's
/// `shutdown` op, a test).
#[derive(Debug, Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Requests shutdown: the accept loop stops, in-flight connections
    /// finish their current request and close.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// True once shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// The bound, not-yet-running server. [`Server::run`] blocks the calling
/// thread until shutdown; interact from other threads via
/// [`Server::local_addr`] and [`Server::shutdown_handle`].
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    obs: ServeObs,
    registry: Arc<Registry>,
    shutdown: Arc<AtomicBool>,
    ticker: Arc<WallClockTicks>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and registers the
    /// server metrics into `registry` — pass the registry the source's
    /// `EngineObs` uses so one `metrics` scrape covers both.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        registry: Arc<Registry>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let obs = ServeObs::register(&registry);
        Ok(Self {
            listener,
            config,
            obs,
            registry,
            shutdown: Arc::new(AtomicBool::new(false)),
            ticker: Arc::new(WallClockTicks::millis()),
        })
    }

    /// The bound address (the resolved port when bound to port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops this server from any thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    /// The server's metric handles.
    pub fn obs(&self) -> &ServeObs {
        &self.obs
    }

    /// Serves `source` until shutdown is requested. Blocks; connections
    /// run on scoped threads, all joined (drained) before this returns.
    pub fn run(&self, source: &(dyn Queryable + Sync)) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let inflight = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            while !self.shutdown.load(Ordering::Acquire) {
                if inflight.load(Ordering::Acquire) >= self.config.max_connections {
                    // At capacity: let the OS backlog hold new connections.
                    std::thread::sleep(Duration::from_millis(2));
                    continue;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        self.obs.connections_total.inc(1);
                        self.obs.connections_inflight.add(1);
                        inflight.fetch_add(1, Ordering::AcqRel);
                        let inflight = &inflight;
                        scope.spawn(move || {
                            let _ = self.serve_connection(stream, source);
                            self.obs.connections_inflight.add(-1);
                            inflight.fetch_sub(1, Ordering::AcqRel);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(())
            // Scope exit joins every connection thread: graceful drain.
        })
    }

    /// Runs the line loop for one connection until EOF, idle timeout,
    /// I/O failure, or server shutdown.
    fn serve_connection(
        &self,
        stream: TcpStream,
        source: &(dyn Queryable + Sync),
    ) -> io::Result<()> {
        // A short real timeout keeps reads responsive to shutdown; the
        // configured idle timeout accumulates across short waits.
        const POLL: Duration = Duration::from_millis(100);
        stream.set_read_timeout(Some(POLL))?;
        stream.set_write_timeout(Some(self.config.write_timeout))?;
        let mut conn = Connection {
            stream,
            obs: &self.obs,
            buf: Vec::with_capacity(4096),
        };

        let mut pending: Vec<u8> = Vec::new();
        let mut idle = Duration::ZERO;
        // Oversized line in progress: already reported, discarding bytes.
        let mut discarding = false;
        let mut chunk = [0u8; 4096];
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return Ok(()); // drain: finish current request, then close
            }
            let n = match conn.stream.read(&mut chunk) {
                Ok(0) => return Ok(()), // client closed
                Ok(n) => n,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    idle += POLL;
                    if idle >= self.config.read_timeout {
                        return Ok(()); // idle too long
                    }
                    continue;
                }
                Err(e) => return Err(e),
            };
            idle = Duration::ZERO;
            self.obs.bytes_read_total.inc(n as u64);
            pending.extend_from_slice(&chunk[..n]);

            // Process every complete line in the buffer.
            while let Some(nl) = pending.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = pending.drain(..=nl).collect();
                let line = &line[..line.len() - 1];
                let line = line.strip_suffix(b"\r").unwrap_or(line);
                if discarding {
                    // The tail of an oversized line; the error already went out.
                    discarding = false;
                    continue;
                }
                if line.is_empty() {
                    continue;
                }
                match self.serve_line(line, source, &mut conn)? {
                    LineOutcome::Continue => {}
                    LineOutcome::Shutdown => {
                        self.shutdown.store(true, Ordering::Release);
                        return Ok(());
                    }
                }
            }
            if !discarding && pending.len() > self.config.max_line_bytes {
                // No newline yet and already too long: answer now, then
                // skip bytes until the line finally ends.
                self.obs.requests_total.inc(1);
                self.obs.request_errors_total.inc(1);
                conn.send_line(&proto::error_line(
                    ErrorCode::LineTooLong,
                    &format!("request line exceeds {} bytes", self.config.max_line_bytes),
                ))?;
                pending.clear();
                discarding = true;
            } else if discarding {
                pending.clear();
            }
        }
    }

    /// Parses and executes one request line, writing its response lines.
    fn serve_line(
        &self,
        line: &[u8],
        source: &(dyn Queryable + Sync),
        conn: &mut Connection<'_>,
    ) -> io::Result<LineOutcome> {
        self.obs.requests_total.inc(1);
        let request = match proto::parse_request(line, self.config.max_batch) {
            Ok(request) => request,
            Err(RequestError { code, msg }) => {
                self.obs.request_errors_total.inc(1);
                conn.send_line(&proto::error_line(code, &msg))?;
                return Ok(LineOutcome::Continue);
            }
        };
        match request {
            Request::Ping => {
                conn.send_line(&proto::done_line(&DoneSummary::default()))?;
                Ok(LineOutcome::Continue)
            }
            Request::Shutdown => {
                if self.config.allow_shutdown {
                    conn.send_line(&proto::done_line(&DoneSummary::default()))?;
                    Ok(LineOutcome::Shutdown)
                } else {
                    self.obs.request_errors_total.inc(1);
                    conn.send_line(&proto::error_line(
                        ErrorCode::BadRequest,
                        "shutdown is disabled on this server",
                    ))?;
                    Ok(LineOutcome::Continue)
                }
            }
            Request::Metrics(format) => {
                let dump = match format {
                    MetricsFormat::Prometheus => self.registry.render_prometheus(),
                    MetricsFormat::Json => self.registry.render_json(),
                };
                conn.send_line(&proto::metrics_line(&dump))?;
                conn.send_line(&proto::done_line(&DoneSummary::default()))?;
                Ok(LineOutcome::Continue)
            }
            Request::Query(spec) => {
                match self.serve_query(&spec, source, conn)? {
                    Ok(summary) => {
                        self.obs.queries_total.inc(summary.queries);
                        self.obs.matches_total.inc(summary.matches);
                        conn.send_line(&proto::done_line(&summary))?;
                    }
                    Err(RequestError { code, msg }) => {
                        self.obs.request_errors_total.inc(1);
                        conn.send_line(&proto::error_line(code, &msg))?;
                    }
                }
                Ok(LineOutcome::Continue)
            }
        }
    }

    /// The server-side budget ceiling for one query line.
    fn ceiling(&self) -> ExecBudget {
        let mut ceiling = ExecBudget::new();
        if let Some(n) = self.config.max_verify_ceiling {
            ceiling = ceiling.with_max_verifications(n);
        }
        if let Some(n) = self.config.max_candidates_ceiling {
            ceiling = ceiling.with_max_candidates(n);
        }
        if let Some(ms) = self.config.deadline_ms_ceiling {
            let (source, at) = wall_deadline(&self.ticker, ms);
            ceiling = ceiling.with_deadline(source, at);
        }
        ceiling
    }

    /// Converts a wire [`proto::BudgetSpec`] into an [`ExecBudget`]
    /// against the server's tick source.
    fn budget_of(&self, spec: &proto::BudgetSpec) -> ExecBudget {
        let mut budget = ExecBudget::new();
        if let Some(n) = spec.max_verify {
            budget = budget.with_max_verifications(n);
        }
        if let Some(n) = spec.max_candidates {
            budget = budget.with_max_candidates(n);
        }
        if let Some(ms) = spec.deadline_ms {
            let (source, at) = wall_deadline(&self.ticker, ms);
            budget = budget.with_deadline(source, at);
        }
        budget
    }

    /// Executes one query line. The outer `io::Result` is the
    /// connection's health; the inner result is the request's.
    fn serve_query(
        &self,
        spec: &QuerySpec,
        source: &(dyn Queryable + Sync),
        conn: &mut Connection<'_>,
    ) -> io::Result<Result<DoneSummary, RequestError>> {
        let tau = spec.tau.unwrap_or(self.config.default_tau);
        if tau > source.tau_max() {
            return Ok(Err(RequestError {
                code: ErrorCode::BadRequest,
                msg: format!("tau {tau} exceeds the index's tau_max {}", source.tau_max()),
            }));
        }
        let effective = self.budget_of(&spec.budget).clamped_by(&self.ceiling());
        let batch_budget = spec
            .batch
            .as_ref()
            .map(|batch| BatchBudget::new(self.budget_of(batch)));
        let requests: Vec<SearchRequest<'_>> = spec
            .queries
            .iter()
            .map(|q| {
                let mut req = SearchRequest::borrowed(q, tau);
                if let Some(k) = spec.limit {
                    req = req.with_limit(k);
                }
                if spec.count {
                    req = req.count_only();
                }
                if !effective.is_unlimited() {
                    req = req.with_budget(effective.clone());
                }
                if let Some(shared) = &batch_budget {
                    req = req.with_batch_budget(shared);
                }
                req
            })
            .collect();

        let mut summary = DoneSummary::default();
        if spec.stream && !spec.count {
            self.stream_query(&requests, source, conn, &mut summary)?;
        } else {
            let response = source.search_batch(&requests);
            for (q, outcome) in response.outcomes.iter().enumerate() {
                if !spec.count {
                    for &(id, dist) in outcome.matches.iter() {
                        conn.send_line(&proto::match_line(q, id, dist))?;
                    }
                }
                conn.send_line(&proto::eoq_line(q, outcome.count, &outcome.completion))?;
                summary.absorb(outcome);
            }
        }
        Ok(Ok(summary))
    }

    /// Streams one query line through the bounded pull channel: the
    /// engine pushes on a helper thread, this (connection) thread pulls
    /// and writes — see the module docs for the backpressure contract.
    fn stream_query(
        &self,
        requests: &[SearchRequest<'_>],
        source: &(dyn Queryable + Sync),
        conn: &mut Connection<'_>,
        summary: &mut DoneSummary,
    ) -> io::Result<()> {
        let (tx, rx) = passjoin_online::pull_channel::<StreamItem>(self.config.stream_buffer);
        let mut write_failure = None;
        let high_water = std::thread::scope(|scope| {
            let engine = scope.spawn(move || {
                for (q, req) in requests.iter().enumerate() {
                    let mut sink = StreamSink {
                        tx: &tx,
                        q,
                        disconnected: false,
                    };
                    let outcome = source.search_streaming(req, &mut sink);
                    let gone = sink.disconnected;
                    if gone || tx.send(StreamItem::Eoq(q, outcome)).is_err() {
                        break; // client is gone; stop the whole line
                    }
                }
                let high_water = tx.high_water();
                drop(tx); // close: the writer's iterator ends
                high_water
            });
            for item in rx {
                let result = match item {
                    StreamItem::Match(q, id, dist) => {
                        conn.send_line(&proto::match_line(q, id, dist))
                    }
                    StreamItem::Eoq(q, outcome) => {
                        summary.absorb(&outcome);
                        conn.send_line(&proto::eoq_line(q, outcome.count, &outcome.completion))
                    }
                };
                if let Err(e) = result {
                    write_failure = Some(e);
                    break; // dropping rx hangs up; the engine aborts
                }
            }
            engine.join().expect("streaming engine thread panicked")
        });
        self.obs.note_stream_peak(high_water);
        match write_failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

enum LineOutcome {
    Continue,
    Shutdown,
}

/// One unit of a streamed response on its way from the engine thread to
/// the connection thread.
enum StreamItem {
    /// A verified match: `(in-line query index, id, distance)`.
    Match(usize, StringId, usize),
    /// A query finished; its outcome closes the query on the wire.
    Eoq(usize, QueryOutcome),
}

/// A [`MatchSink`] tagging each match with its in-line query index and
/// pushing it into the bounded channel; a hung-up channel (the writer
/// saw a dead socket) saturates the sink, aborting the scan.
struct StreamSink<'a> {
    tx: &'a passjoin_online::PullSender<StreamItem>,
    q: usize,
    disconnected: bool,
}

impl MatchSink for StreamSink<'_> {
    fn push(&mut self, id: StringId, dist: usize) {
        if self.disconnected {
            return;
        }
        if self.tx.send(StreamItem::Match(self.q, id, dist)).is_err() {
            self.disconnected = true;
        }
    }

    fn saturated(&self) -> bool {
        self.disconnected || self.tx.is_hung_up()
    }
}

/// One connection's write half plus byte accounting.
struct Connection<'a> {
    stream: TcpStream,
    obs: &'a ServeObs,
    buf: Vec<u8>,
}

impl Connection<'_> {
    /// Writes `line` plus a newline, counting the bytes.
    fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.buf.clear();
        self.buf.extend_from_slice(line.as_bytes());
        self.buf.push(b'\n');
        self.stream.write_all(&self.buf)?;
        self.obs.bytes_written_total.inc(self.buf.len() as u64);
        Ok(())
    }
}
