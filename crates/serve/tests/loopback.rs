//! Loopback suite: a real server on `127.0.0.1:0` answering a real
//! client, pinned against the offline `Queryable` ground truth.
//!
//! The contracts exercised here, on both key backends:
//!
//! 1. **Byte-identity** — for every request shape (full, top-k,
//!    count-only) the server's response lines are *byte-identical* to
//!    lines formatted locally from the offline `search_batch` answer,
//!    non-ASCII corpora included (the JSON codec is byte-transparent).
//!    Streamed responses carry exactly the offline match set.
//! 2. **Resilience** — malformed, oversized, and invalid lines get
//!    typed error terminators and the connection keeps serving.
//! 3. **Backpressure** — a slow streaming reader still gets every
//!    match, and the server-side queue never exceeds the configured
//!    `stream_buffer` (scraped from `passjoin_server_stream_buffered_peak`).
//! 4. **Budgets** — server ceilings clamp client budgets; a `batch`
//!    budget is drained across the whole line.
//! 5. **Lifecycle** — graceful shutdown drains in-flight connections;
//!    the protocol `shutdown` op works only when enabled; the `metrics`
//!    op reports request/query counters that add up.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use passjoin_obs::Registry;
use passjoin_online::{KeyBackend, OnlineIndex, Queryable, SearchRequest};
use passjoin_serve::proto::{self, BudgetSpec, DoneSummary, MetricsFormat};
use passjoin_serve::{build_query_line, Client, Event, QueryOptions, Server, ServerConfig};

const BACKENDS: [KeyBackend; 2] = [KeyBackend::Owned, KeyBackend::Interned];

/// Deterministic corpus with planted near-duplicates and non-ASCII
/// bytes (no RNG crate needed; xorshift is plenty for test data).
fn corpus(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    const ALPHABET: &[u8] = b"ab\xC3\xA9d\x00z";
    let mut strings = Vec::with_capacity(n);
    for _ in 0..n {
        let len = 4 + (next() % 9) as usize;
        let mut s: Vec<u8> = (0..len)
            .map(|_| ALPHABET[(next() % ALPHABET.len() as u64) as usize])
            .collect();
        strings.push(s.clone());
        // Plant an edit-distance-1 neighbour for every third string.
        if strings.len() % 3 == 0 {
            let at = (next() % s.len() as u64) as usize;
            s[at] = ALPHABET[(next() % ALPHABET.len() as u64) as usize];
            strings.push(s);
        }
    }
    strings.truncate(n);
    strings
}

fn build(strings: &[Vec<u8>], tau_max: usize, backend: KeyBackend) -> OnlineIndex {
    OnlineIndex::builder(tau_max)
        .key_backend(backend)
        .build_from(strings.iter())
}

/// Binds an ephemeral-port server over `index`, runs `test` against it,
/// then shuts down and propagates any server error. The scope join is
/// itself the graceful-drain assertion: `run` only returns once every
/// connection thread has finished.
fn with_server<T>(
    index: &OnlineIndex,
    config: ServerConfig,
    registry: Arc<Registry>,
    test: impl FnOnce(SocketAddr, &Server) -> T,
) -> T {
    let server = Server::bind(("127.0.0.1", 0), config, registry).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().expect("local addr");
    std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run(index));
        let result = test(addr, &server);
        server.shutdown_handle().shutdown();
        runner
            .join()
            .expect("server thread panicked")
            .expect("server I/O failure");
        result
    })
}

/// Sends one raw line and reads raw response lines through the
/// terminator — the byte-level view the identity tests compare on.
fn raw_exchange(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
) -> Vec<String> {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut lines = Vec::new();
    loop {
        let mut l = String::new();
        assert_ne!(reader.read_line(&mut l).unwrap(), 0, "server closed early");
        let l = l.trim_end_matches('\n').to_string();
        let terminator = l.starts_with("{\"done\"") || l.starts_with("{\"error\"");
        lines.push(l);
        if terminator {
            return lines;
        }
    }
}

/// Formats the exact lines the server must produce for a non-streamed
/// query line, from the offline `search_batch` ground truth.
fn offline_lines(
    index: &OnlineIndex,
    queries: &[Vec<u8>],
    tau: usize,
    limit: Option<usize>,
    count: bool,
) -> Vec<String> {
    let requests: Vec<SearchRequest<'_>> = queries
        .iter()
        .map(|q| {
            let mut req = SearchRequest::borrowed(q, tau);
            if let Some(k) = limit {
                req = req.with_limit(k);
            }
            if count {
                req = req.count_only();
            }
            req
        })
        .collect();
    let response = index.search_batch(&requests);
    let mut lines = Vec::new();
    let mut summary = DoneSummary::default();
    for (q, outcome) in response.outcomes.iter().enumerate() {
        if !count {
            for &(id, dist) in outcome.matches.iter() {
                lines.push(proto::match_line(q, id, dist));
            }
        }
        lines.push(proto::eoq_line(q, outcome.count, &outcome.completion));
        summary.absorb(outcome);
    }
    lines.push(proto::done_line(&summary));
    lines
}

/// Scrapes one counter/gauge value out of a Prometheus text dump.
fn metric_value(dump: &str, name: &str) -> Option<i64> {
    dump.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        rest.trim().parse().ok()
    })
}

#[test]
fn responses_are_byte_identical_to_offline_answers() {
    let strings = corpus(160, 0xC0FFEE);
    let queries: Vec<Vec<u8>> = strings.iter().step_by(11).cloned().collect();
    for backend in BACKENDS {
        let index = build(&strings, 2, backend);
        with_server(
            &index,
            ServerConfig::default(),
            Arc::new(Registry::new()),
            |addr, _| {
                let mut stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                for tau in 0..=2usize {
                    for (limit, count) in [(None, false), (Some(3), false), (None, true)] {
                        let options = QueryOptions {
                            tau: Some(tau),
                            limit,
                            count,
                            ..QueryOptions::default()
                        };
                        let line = build_query_line(&queries, &options);
                        let got = raw_exchange(&mut stream, &mut reader, &line);
                        let want = offline_lines(&index, &queries, tau, limit, count);
                        assert_eq!(
                            got, want,
                            "shape (tau={tau} limit={limit:?} count={count}) on {backend:?}"
                        );
                    }
                }
            },
        );
    }
}

#[test]
fn streamed_responses_carry_exactly_the_offline_matches() {
    let strings = corpus(120, 0xBEEF);
    let queries: Vec<Vec<u8>> = strings.iter().step_by(17).cloned().collect();
    for backend in BACKENDS {
        let index = build(&strings, 2, backend);
        with_server(
            &index,
            ServerConfig::default(),
            Arc::new(Registry::new()),
            |addr, _| {
                let mut client = Client::connect(addr).unwrap();
                for tau in 0..=2usize {
                    let options = QueryOptions {
                        tau: Some(tau),
                        stream: true,
                        ..QueryOptions::default()
                    };
                    let events = client.query(&queries, &options).unwrap();
                    for (q, query) in queries.iter().enumerate() {
                        let mut streamed: Vec<(u32, usize)> = events
                            .iter()
                            .filter_map(|e| match e {
                                Event::Match { q: eq, id, d } if *eq == q as u64 => {
                                    Some((*id as u32, *d as usize))
                                }
                                _ => None,
                            })
                            .collect();
                        streamed.sort_unstable();
                        let offline = index.search(&SearchRequest::borrowed(query, tau));
                        assert_eq!(
                            streamed, *offline.matches,
                            "query {q} at tau={tau} on {backend:?}"
                        );
                    }
                    assert!(events.iter().all(|e| !matches!(
                        e,
                        Event::Eoq {
                            complete: false,
                            ..
                        }
                    )));
                }
            },
        );
    }
}

#[test]
fn bad_lines_get_typed_errors_and_the_connection_survives() {
    let strings = corpus(40, 7);
    let index = build(&strings, 1, KeyBackend::Owned);
    let config = ServerConfig {
        max_line_bytes: 256,
        max_batch: 4,
        ..ServerConfig::default()
    };
    with_server(&index, config, Arc::new(Registry::new()), |addr, _| {
        let mut client = Client::connect(addr).unwrap();
        let check = |client: &mut Client, line: &str, code: &str| {
            let events = client.request_raw(line).unwrap();
            match events.last() {
                Some(Event::Error { code: got, .. }) => {
                    assert_eq!(got, code, "line {line:?}")
                }
                other => panic!("line {line:?}: wanted error {code}, got {other:?}"),
            }
        };
        check(&mut client, "this is not json", "parse");
        check(&mut client, "[1,2,3]", "parse");
        check(&mut client, "{\"op\":\"frobnicate\"}", "bad_request");
        check(&mut client, "{\"op\":\"query\"}", "bad_request");
        check(
            &mut client,
            "{\"op\":\"query\",\"q\":\"a\",\"tau\":99}",
            "bad_request",
        );
        check(
            &mut client,
            "{\"op\":\"query\",\"queries\":[\"a\",\"b\",\"c\",\"d\",\"e\"]}",
            "batch_too_large",
        );
        // Shutdown is disabled by default.
        check(&mut client, "{\"op\":\"shutdown\"}", "bad_request");
        // An oversized line: the error arrives while the line is still
        // being discarded, and the next (valid) line is answered.
        let huge = format!("{{\"op\":\"query\",\"q\":\"{}\"}}", "x".repeat(300));
        check(&mut client, &huge, "line_too_long");
        // Same connection, still alive and correct:
        let events = client
            .query(
                &[strings[0].clone()],
                &QueryOptions {
                    tau: Some(1),
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        assert!(matches!(
            events.last(),
            Some(Event::Done { queries: 1, .. })
        ));
        client.ping().unwrap();
    });
}

#[test]
fn slow_reader_is_bounded_by_the_stream_buffer_and_loses_nothing() {
    // A corpus of near-identical strings: one streamed query at τ=2
    // matches nearly everything, producing far more matches than the
    // 4-slot channel can hold at once.
    let mut strings = Vec::new();
    for i in 0..96u8 {
        strings.push(vec![b'a', b'b', b'c', b'd', b'e', b'a' + (i % 4)]);
    }
    let index = build(&strings, 2, KeyBackend::Owned);
    let config = ServerConfig {
        stream_buffer: 4,
        ..ServerConfig::default()
    };
    let registry = Arc::new(Registry::new());
    with_server(&index, config, Arc::clone(&registry), |addr, server| {
        let offline = index.search(&SearchRequest::borrowed(&strings[0], 2));
        assert!(offline.count > 16, "corpus must out-produce the buffer");

        let mut client = Client::connect(addr).unwrap();
        let options = QueryOptions {
            tau: Some(2),
            stream: true,
            ..QueryOptions::default()
        };
        client
            .query_nowait(&[strings[0].clone()], &options)
            .unwrap();
        let mut got = Vec::new();
        loop {
            // The slow reader: dawdle between pulls so the server-side
            // channel genuinely fills and the engine blocks on it.
            std::thread::sleep(Duration::from_millis(1));
            match client.read_event().unwrap().expect("no EOF mid-response") {
                Event::Match { id, d, .. } => got.push((id as u32, d as usize)),
                Event::Eoq { n, complete, .. } => {
                    assert_eq!(n as usize, offline.count);
                    assert!(complete);
                }
                Event::Done { matches, .. } => {
                    assert_eq!(matches as usize, offline.count);
                    break;
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        got.sort_unstable();
        assert_eq!(got, *offline.matches, "a slow reader loses nothing");

        let peak = server.obs().stream_buffered_peak.get();
        assert!(
            (1..=4).contains(&peak),
            "server-side streaming queue peaked at {peak}, budget is 4"
        );
        // And the scrape agrees with the handle.
        let dump = client.metrics(MetricsFormat::Prometheus).unwrap();
        assert_eq!(
            metric_value(&dump, "passjoin_server_stream_buffered_peak"),
            Some(peak)
        );
    });
}

#[test]
fn server_ceiling_clamps_client_budgets() {
    let strings = corpus(120, 99);
    let index = build(&strings, 2, KeyBackend::Owned);
    let config = ServerConfig {
        max_verify_ceiling: Some(0),
        ..ServerConfig::default()
    };
    with_server(&index, config, Arc::new(Registry::new()), |addr, _| {
        let mut client = Client::connect(addr).unwrap();
        // The client asks for far more than the ceiling allows — and for
        // no budget at all; both are clamped to the ceiling.
        for budget in [
            BudgetSpec {
                max_verify: Some(1_000_000),
                ..BudgetSpec::default()
            },
            BudgetSpec::default(),
        ] {
            let options = QueryOptions {
                tau: Some(2),
                budget,
                ..QueryOptions::default()
            };
            let events = client.query(&[strings[0].clone()], &options).unwrap();
            let eoq = events
                .iter()
                .find(|e| matches!(e, Event::Eoq { .. }))
                .expect("an eoq line");
            let Event::Eoq {
                complete, reason, ..
            } = eoq
            else {
                unreachable!()
            };
            assert!(!complete, "a zero-verification ceiling must truncate");
            assert_eq!(reason.as_deref(), Some("verification cap"));
            let Some(Event::Done {
                truncated,
                verifications,
                ..
            }) = events.last()
            else {
                panic!("missing done terminator")
            };
            assert_eq!(*truncated, 1);
            assert_eq!(*verifications, 0, "the ceiling allows zero work");
        }
    });
}

#[test]
fn batch_budget_is_shared_across_the_whole_line() {
    let strings = corpus(160, 0xABCDEF);
    let queries: Vec<Vec<u8>> = strings.iter().step_by(5).cloned().collect();
    let index = build(&strings, 2, KeyBackend::Owned);
    with_server(
        &index,
        ServerConfig::default(),
        Arc::new(Registry::new()),
        |addr, _| {
            let mut client = Client::connect(addr).unwrap();
            // Unbudgeted ground truth for the total work.
            let free = client
                .query(
                    &queries,
                    &QueryOptions {
                        tau: Some(2),
                        ..QueryOptions::default()
                    },
                )
                .unwrap();
            let Some(Event::Done {
                verifications: total,
                ..
            }) = free.last()
            else {
                panic!("missing done")
            };
            assert!(*total > 4, "need real work to share");

            let cap = total / 2;
            let options = QueryOptions {
                tau: Some(2),
                batch: Some(BudgetSpec {
                    max_verify: Some(cap),
                    ..BudgetSpec::default()
                }),
                ..QueryOptions::default()
            };
            let events = client.query(&queries, &options).unwrap();
            let Some(Event::Done {
                verifications,
                truncated,
                ..
            }) = events.last()
            else {
                panic!("missing done")
            };
            assert!(
                *verifications <= cap,
                "line-wide work {verifications} must respect the shared cap {cap}"
            );
            assert!(*truncated >= 1, "an undersized pool must trip someone");
            // Each truncated query reports the typed reason on its eoq.
            for event in &events {
                if let Event::Eoq {
                    complete: false,
                    reason,
                    ..
                } = event
                {
                    assert_eq!(reason.as_deref(), Some("verification cap"));
                }
            }
        },
    );
}

#[test]
fn protocol_shutdown_drains_and_stops_the_server() {
    let strings = corpus(60, 3);
    let index = build(&strings, 1, KeyBackend::Interned);
    let config = ServerConfig {
        allow_shutdown: true,
        ..ServerConfig::default()
    };
    let server = Server::bind(("127.0.0.1", 0), config, Arc::new(Registry::new())).unwrap();
    let addr = server.local_addr().unwrap();
    std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run(&index));
        let mut client = Client::connect(addr).unwrap();
        // A full request-response round first: proof the server was live.
        let events = client
            .query(
                &[strings[0].clone()],
                &QueryOptions {
                    tau: Some(1),
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        assert!(matches!(events.last(), Some(Event::Done { .. })));
        // The protocol op acknowledges *before* the server stops: the
        // done terminator is the drain guarantee.
        client.shutdown().unwrap();
        runner
            .join()
            .expect("server thread panicked")
            .expect("server I/O failure");
        assert!(server.shutdown_handle().is_shutdown());
    });
}

#[test]
fn metrics_op_reports_the_traffic_it_is_part_of() {
    let strings = corpus(80, 11);
    let index = build(&strings, 1, KeyBackend::Owned);
    let registry = Arc::new(Registry::new());
    with_server(
        &index,
        ServerConfig::default(),
        Arc::clone(&registry),
        |addr, _| {
            let mut client = Client::connect(addr).unwrap();
            let queries: Vec<Vec<u8>> = strings.iter().take(6).cloned().collect();
            for chunk in queries.chunks(2) {
                client
                    .query(
                        chunk,
                        &QueryOptions {
                            tau: Some(1),
                            ..QueryOptions::default()
                        },
                    )
                    .unwrap();
            }
            client.request_raw("definitely not json").unwrap();

            let dump = client.metrics(MetricsFormat::Prometheus).unwrap();
            assert_eq!(
                metric_value(&dump, "passjoin_server_queries_total"),
                Some(6)
            );
            // 3 query lines + 1 bad line + the metrics request itself.
            assert_eq!(
                metric_value(&dump, "passjoin_server_requests_total"),
                Some(5)
            );
            assert_eq!(
                metric_value(&dump, "passjoin_server_request_errors_total"),
                Some(1)
            );
            assert_eq!(
                metric_value(&dump, "passjoin_server_connections_total"),
                Some(1)
            );

            // The JSON format parses with the crate's own codec and carries
            // the same counter.
            let json_dump = client.metrics(MetricsFormat::Json).unwrap();
            let parsed =
                passjoin_serve::json::parse(json_dump.as_bytes()).expect("metrics json parses");
            drop(parsed);
            assert!(json_dump.contains("passjoin_server_queries_total"));
        },
    );
}
