//! Streaming near-duplicate detection: query-before-insert + union-find.
//!
//! [`DedupPipeline::push`] takes one record at a time, searches the
//! index built from everything pushed so far, unions the record with its
//! matches, and then inserts it — one pass over a corpus yields the
//! duplicate clusters (connected components of the "similarity ≥ t"
//! graph restricted to stream-order edges; because every earlier member
//! is queried against, any pair that matches produces an edge, so the
//! components equal the transitive closure of the full match relation).

use std::sync::Arc;

use passjoin_online::ExecStats;
use sj_common::StringId;

use crate::index::{SetQuery, SetSimilarityIndex};
use crate::metric::SetMetric;
use crate::obs::SetSimObs;
use crate::tokenize::TokenMode;

/// Disjoint-set forest with path halving and union by size.
#[derive(Debug, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// A forest of `n` singletons.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Grows the forest to at least `n` elements (new ones are
    /// singletons).
    pub fn ensure(&mut self, n: usize) {
        while self.parent.len() < n {
            self.parent.push(self.parent.len() as u32);
            self.size.push(1);
        }
    }

    /// Elements in the forest.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the forest is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The representative of `x`'s set.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            // Path halving: point every other node at its grandparent.
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns false if they already
    /// shared one.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }

    /// The multi-member sets: each sorted ascending, the list sorted by
    /// smallest member. Singletons are omitted — a "cluster" is a group
    /// of near-duplicates, and everything starts as a singleton.
    pub fn clusters(&mut self) -> Vec<Vec<u32>> {
        let n = self.parent.len();
        let mut by_root: std::collections::BTreeMap<u32, Vec<u32>> =
            std::collections::BTreeMap::new();
        for x in 0..n as u32 {
            by_root.entry(self.find(x)).or_default().push(x);
        }
        let mut out: Vec<Vec<u32>> = by_root.into_values().filter(|c| c.len() > 1).collect();
        // Members are pushed in ascending order already; order clusters
        // by first member for a deterministic report.
        out.sort_unstable_by_key(|c| c[0]);
        out
    }
}

/// The streaming near-duplicate pipeline; see the [module docs](self).
pub struct DedupPipeline {
    index: SetSimilarityIndex,
    metric: SetMetric,
    threshold: f64,
    uf: UnionFind,
    totals: ExecStats,
    requests: u64,
    matched_records: u64,
}

impl DedupPipeline {
    /// A pipeline detecting records with `metric`-similarity ≥
    /// `threshold` under tokenization `mode`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < threshold ≤ 1`.
    pub fn new(mode: TokenMode, metric: SetMetric, threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "dedup threshold must be in (0, 1], got {threshold}"
        );
        Self {
            index: SetSimilarityIndex::new(mode),
            metric,
            threshold,
            uf: UnionFind::default(),
            totals: ExecStats::default(),
            requests: 0,
            matched_records: 0,
        }
    }

    /// Attaches a `passjoin_setsim_*` metrics family to the inner index.
    pub fn with_observability(mut self, obs: Arc<SetSimObs>) -> Self {
        self.index.set_observability(Some(obs));
        self
    }

    /// Feeds one record: queries the index built so far, unions the
    /// record with every match, inserts it. Returns the number of
    /// near-duplicates found (0 for a fresh record). The record's id is
    /// its 0-based stream position.
    pub fn push(&mut self, record: &[u8]) -> usize {
        let query = SetQuery::new(record, self.metric, self.threshold);
        let outcome = self.index.search(&query);
        self.totals.merge(&outcome.stats);
        self.requests += 1;
        let id = self.index.insert(record);
        self.uf.ensure(id as usize + 1);
        for &(m, _) in outcome.matches.iter() {
            self.uf.union(id, m);
        }
        if outcome.count > 0 {
            self.matched_records += 1;
        }
        outcome.count
    }

    /// Records pushed so far.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True before the first push.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The duplicate clusters found so far (see
    /// [`UnionFind::clusters`]).
    pub fn clusters(&mut self) -> Vec<Vec<StringId>> {
        self.uf.clusters()
    }

    /// Summed [`ExecStats`] across every query the pipeline has run.
    pub fn stats(&self) -> &ExecStats {
        &self.totals
    }

    /// Queries run (= records pushed).
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Records that matched at least one earlier record when pushed.
    pub fn matched_records(&self) -> u64 {
        self.matched_records
    }

    /// The inner index (e.g. for shape stats).
    pub fn index(&self) -> &SetSimilarityIndex {
        &self.index
    }
}

impl std::fmt::Debug for DedupPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DedupPipeline")
            .field("metric", &self.metric)
            .field("threshold", &self.threshold)
            .field("records", &self.index.len())
            .field("requests", &self.requests)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_components() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 3));
        assert!(uf.union(3, 5));
        assert!(!uf.union(0, 5));
        assert!(uf.union(1, 2));
        assert_eq!(uf.clusters(), vec![vec![0, 3, 5], vec![1, 2]]);
        uf.ensure(8);
        assert_eq!(uf.len(), 8);
        assert_eq!(uf.clusters(), vec![vec![0, 3, 5], vec![1, 2]]);
    }

    #[test]
    fn pipeline_clusters_transitively() {
        let mut p = DedupPipeline::new(TokenMode::Words, SetMetric::Jaccard, 0.5);
        // a–b similar, b–c similar, d unrelated: {a, b, c} one cluster.
        assert_eq!(p.push(b"alpha beta gamma delta"), 0);
        assert_eq!(p.push(b"alpha beta gamma epsilon"), 1);
        assert!(p.push(b"alpha beta epsilon zeta") >= 1);
        assert_eq!(p.push(b"omega psi chi phi"), 0);
        assert_eq!(p.clusters(), vec![vec![0, 1, 2]]);
        assert_eq!(p.requests(), 4);
        assert!(p.stats().verifications >= 2);
    }

    #[test]
    fn empty_records_never_cluster() {
        let mut p = DedupPipeline::new(TokenMode::Grams { q: 2 }, SetMetric::Jaccard, 0.8);
        p.push(b"");
        p.push(b"");
        p.push(b"x"); // shorter than q: empty set too
        assert!(p.clusters().is_empty());
    }
}
