//! The prefix-filter inverted index for set-similarity search.
//!
//! Records are tokenized ([`TokenMode`]) into sets of interned token ids
//! (the [`SegmentInterner`] is the token dictionary, exactly as it is the
//! segment dictionary in the edit-distance lane). Each record's tokens
//! are kept sorted under a **rarest-first global order**
//! ([`SetSimilarityIndex::build_from`] assigns document-frequency ranks
//! via [`edjoin::grams::rarest_first_ranks`]; tokens first seen by later
//! inserts sort before everything already ranked — a brand-new token has
//! document frequency 1, the rarest possible), and the whole sorted
//! array is posted as `token → (record, position)` entries.
//!
//! A query probes only its **prefix** — the first `sx − α + 1` tokens,
//! where `α` is the metric's required-overlap bound — and screens each
//! posting entry with length-interval pruning and the positional prefix
//! condition `j_x + α(sx, sy) ≤ sx ∧ j_y + α(sx, sy) ≤ sy` before an
//! exact merge verification. This is the PPJoin/All-Pairs family of
//! filters (see [`crate::metric`]) on the engine's existing
//! probe-verify-sink skeleton: verification pushes into a
//! [`MatchSink`], so top-k steering, saturation, and [`ExecBudget`]
//! caps all work unchanged.

use std::sync::Arc;
use std::time::Instant;

use passjoin::intern::{SegId, SegmentInterner};
use passjoin::sink::{BudgetSink, CollectSink, CountSink, MatchSink, TopKSink};
use passjoin_online::{CacheOutcome, Completion, ExecBudget, ExecStats, QueryOutcome};
use sj_common::hash::{FxHashMap, FxHashSet};
use sj_common::StringId;

use crate::metric::SetMetric;
use crate::obs::SetSimObs;
use crate::tokenize::TokenMode;

/// Sort key of an unknown query token (absent from the dictionary).
/// Distinct unknowns get `UNKNOWN_KEY`, `UNKNOWN_KEY + 1`, … — all far
/// below any insert-assigned key, so unknowns sit at the front of the
/// prefix where their empty posting lists cost nothing.
const UNKNOWN_KEY: i64 = i64::MIN;

/// Raw-id sentinel for an unknown query token. Real ids stay below the
/// interner's spill bit, so the sentinel can never collide.
const UNKNOWN_RAW: u32 = u32::MAX;

/// One set-similarity request: query text, metric, threshold, and the
/// same result shapes the edit-distance `SearchRequest` offers (top-k,
/// count-only, execution budget).
#[derive(Debug, Clone)]
pub struct SetQuery<'a> {
    text: &'a [u8],
    metric: SetMetric,
    threshold: f64,
    limit: Option<usize>,
    count_only: bool,
    budget: Option<ExecBudget>,
}

impl<'a> SetQuery<'a> {
    /// A plain request: all records with `metric`-similarity ≥
    /// `threshold` to `text`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < threshold ≤ 1`.
    pub fn new(text: &'a [u8], metric: SetMetric, threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "set-similarity threshold must be in (0, 1], got {threshold}"
        );
        Self {
            text,
            metric,
            threshold,
            limit: None,
            count_only: false,
            budget: None,
        }
    }

    /// Keep only the `k` most-similar matches (ties broken by id).
    pub fn with_limit(mut self, k: usize) -> Self {
        self.limit = Some(k);
        self
    }

    /// Report only the match count (capped at the limit, if one is set);
    /// no matches are materialized.
    pub fn count_only(mut self) -> Self {
        self.count_only = true;
        self
    }

    /// Attach an execution budget (verification/candidate caps,
    /// deadline) — enforced through the same [`BudgetSink`] adapter the
    /// edit-distance engine uses.
    pub fn with_budget(mut self, budget: ExecBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The query bytes.
    pub fn text(&self) -> &[u8] {
        self.text
    }

    /// The metric.
    pub fn metric(&self) -> SetMetric {
        self.metric
    }

    /// The threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The top-k limit, if any.
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }

    /// Whether this is a count-only request.
    pub fn is_count_only(&self) -> bool {
        self.count_only
    }

    /// The attached budget, if any.
    pub fn budget(&self) -> Option<&ExecBudget> {
        self.budget.as_ref()
    }
}

/// A dynamic set-similarity index: insert/remove records, search under
/// Jaccard/cosine/overlap thresholds. See the [module docs](self) for
/// the filtering pipeline.
pub struct SetSimilarityIndex {
    mode: TokenMode,
    dict: SegmentInterner,
    /// Raw token id → global-order sort key. Ranked tokens (from
    /// `build_from`) hold their rank; tokens first interned by a later
    /// `insert` hold descending negative keys. Keys never change, so
    /// stored token arrays never need re-sorting.
    key_of: Vec<i64>,
    /// Next key for a token first seen by `insert` (−1, −2, …).
    next_new: i64,
    /// Record id → its token-id set, sorted by `(key, raw id)`. `None`
    /// after removal; ids are never reused.
    records: Vec<Option<Box<[SegId]>>>,
    /// Raw token id → postings: `(record, position in its sorted array)`.
    postings: Vec<Vec<(StringId, u32)>>,
    live: usize,
    posting_entries: u64,
    obs: Option<Arc<SetSimObs>>,
}

impl SetSimilarityIndex {
    /// An empty index. Tokens are ordered first-seen-last-is-rarest; for
    /// a corpus known up front, [`SetSimilarityIndex::build_from`] gives
    /// the true document-frequency order.
    pub fn new(mode: TokenMode) -> Self {
        Self {
            mode,
            dict: SegmentInterner::new(),
            key_of: Vec::new(),
            next_new: -1,
            records: Vec::new(),
            postings: Vec::new(),
            live: 0,
            posting_entries: 0,
            obs: None,
        }
    }

    /// Builds an index over `records` with the global token order set to
    /// exact rarest-first document frequency (ascending df, ties by
    /// bytes) — the order that keeps probe prefixes on the shortest
    /// posting lists. Record ids are assigned `0..records.len()` in
    /// order.
    pub fn build_from<S: AsRef<[u8]>>(mode: TokenMode, records: &[S]) -> Self {
        let mut freq: FxHashMap<&[u8], u32> = FxHashMap::default();
        for r in records {
            for tok in mode.token_set(r.as_ref()) {
                *freq.entry(tok).or_insert(0) += 1;
            }
        }
        let mut index = Self::new(mode);
        // Interning in rank order makes raw id = rank, so the sort key
        // of a ranked token is simply its id.
        for (tok, rank) in edjoin::grams::rarest_first_ranks(freq.into_iter().collect()) {
            let id = index
                .dict
                .intern(tok)
                .expect("setsim token dictionary overflow");
            debug_assert_eq!(id.raw(), rank);
            index.key_of.push(i64::from(rank));
            index.postings.push(Vec::new());
        }
        for r in records {
            index.insert(r.as_ref());
        }
        index
    }

    /// Attach (or detach) a metrics family; see [`SetSimObs`].
    pub fn set_observability(&mut self, obs: Option<Arc<SetSimObs>>) {
        self.obs = obs;
        self.record_index_gauges();
    }

    /// The tokenization mode.
    pub fn mode(&self) -> TokenMode {
        self.mode
    }

    /// Live (inserted, not removed) records.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live record is indexed.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Distinct tokens in the dictionary (including tokens whose last
    /// record was removed — ids are permanent).
    pub fn token_count(&self) -> usize {
        self.dict.len()
    }

    /// Live posting entries across all lists (Σ set sizes of live
    /// records).
    pub fn posting_entries(&self) -> u64 {
        self.posting_entries
    }

    /// Inserts a record, returning its id (dense, never reused). The
    /// record is tokenized under the index's mode; an empty token set is
    /// legal and matches nothing, ever.
    ///
    /// # Panics
    ///
    /// Panics if the token dictionary overflows its id or arena limit.
    pub fn insert(&mut self, record: &[u8]) -> StringId {
        let id = self.records.len() as StringId;
        let mut tokens: Vec<SegId> = Vec::new();
        for tok in self.mode.token_set(record) {
            let seg = self
                .dict
                .intern(tok)
                .expect("setsim token dictionary overflow");
            if seg.raw() as usize == self.key_of.len() {
                // First sighting: df = 1, the rarest a token can be —
                // order it before everything already ranked.
                self.key_of.push(self.next_new);
                self.next_new -= 1;
                self.postings.push(Vec::new());
            }
            self.dict.acquire(seg);
            tokens.push(seg);
        }
        tokens.sort_unstable_by_key(|s| (self.key_of[s.raw() as usize], s.raw()));
        for (pos, seg) in tokens.iter().enumerate() {
            self.postings[seg.raw() as usize].push((id, pos as u32));
        }
        self.posting_entries += tokens.len() as u64;
        self.records.push(Some(tokens.into_boxed_slice()));
        self.live += 1;
        if let Some(obs) = &self.obs {
            obs.note_insert();
        }
        self.record_index_gauges();
        id
    }

    /// Removes a record by id. Returns false if the id was never
    /// assigned or already removed. Posting entries are erased eagerly
    /// and the token dictionary's reference counts released.
    pub fn remove(&mut self, id: StringId) -> bool {
        let Some(tokens) = self.records.get_mut(id as usize).and_then(Option::take) else {
            return false;
        };
        for seg in tokens.iter() {
            self.postings[seg.raw() as usize].retain(|&(y, _)| y != id);
            self.dict.release(*seg);
        }
        self.posting_entries -= tokens.len() as u64;
        self.live -= 1;
        if let Some(obs) = &self.obs {
            obs.note_remove();
        }
        self.record_index_gauges();
        true
    }

    /// Answers a request in its declared shape — the same outcome type
    /// the edit-distance engine returns (`cache` is always
    /// [`CacheOutcome::Bypass`]; this lane has no result cache yet).
    pub fn search(&self, query: &SetQuery) -> QueryOutcome {
        let started = self.obs.as_ref().map(|_| Instant::now());
        let qtokens = self.query_tokens(query.text);
        let outcome = if query.count_only {
            let mut sink = match query.limit {
                Some(k) => CountSink::capped(k),
                None => CountSink::new(),
            };
            let (stats, completion) = self.drive(query, &qtokens, &mut sink);
            QueryOutcome {
                matches: Arc::new(Vec::new()),
                count: sink.count(),
                cache: CacheOutcome::Bypass,
                completion,
                stats,
            }
        } else if let Some(k) = query.limit {
            let mut sink = TopKSink::new(k);
            let (stats, completion) = self.drive(query, &qtokens, &mut sink);
            let matches = sink.into_matches();
            QueryOutcome {
                count: matches.len(),
                matches: Arc::new(matches),
                cache: CacheOutcome::Bypass,
                completion,
                stats,
            }
        } else {
            let mut out = Vec::new();
            let mut sink = CollectSink::new(&mut out);
            let (stats, completion) = self.drive(query, &qtokens, &mut sink);
            out.sort_unstable();
            QueryOutcome {
                count: out.len(),
                matches: Arc::new(out),
                cache: CacheOutcome::Bypass,
                completion,
                stats,
            }
        };
        if let (Some(obs), Some(t0)) = (&self.obs, started) {
            obs.record_request(
                &outcome.stats,
                &outcome.completion,
                t0.elapsed().as_nanos() as u64,
            );
        }
        outcome
    }

    /// Streams verified matches into a caller sink as the scan finds
    /// them — `(id, scaled distance)` with
    /// `dist = round((1 − sim)·`[`DIST_SCALE`]`)`, so the sink's
    /// bound/saturation steering speaks the same integer language as the
    /// edit-distance lane. The returned outcome carries the stats and
    /// completion; its match vector is empty (matches went to the sink).
    ///
    /// [`DIST_SCALE`]: crate::metric::DIST_SCALE
    pub fn search_streaming(&self, query: &SetQuery, sink: &mut dyn MatchSink) -> QueryOutcome {
        let started = self.obs.as_ref().map(|_| Instant::now());
        let qtokens = self.query_tokens(query.text);
        let (stats, completion) = self.drive(query, &qtokens, sink);
        let outcome = QueryOutcome {
            matches: Arc::new(Vec::new()),
            count: stats.segment_matches as usize,
            cache: CacheOutcome::Bypass,
            completion,
            stats,
        };
        if let (Some(obs), Some(t0)) = (&self.obs, started) {
            obs.record_request(
                &outcome.stats,
                &outcome.completion,
                t0.elapsed().as_nanos() as u64,
            );
        }
        outcome
    }

    /// The query's token array: distinct tokens as `(sort key, raw id)`,
    /// sorted. Unknown tokens (absent from the dictionary) get sentinel
    /// entries that sort first and carry no postings.
    fn query_tokens(&self, text: &[u8]) -> Vec<(i64, u32)> {
        let toks = self.mode.token_set(text);
        let mut out = Vec::with_capacity(toks.len());
        let mut unknown_key = UNKNOWN_KEY;
        for tok in toks {
            match self.dict.lookup(tok) {
                Some(seg) => out.push((self.key_of[seg.raw() as usize], seg.raw())),
                None => {
                    out.push((unknown_key, UNKNOWN_RAW));
                    unknown_key += 1;
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Wraps the sink in the request's budget (if any) and probes.
    fn drive<S: MatchSink + ?Sized>(
        &self,
        query: &SetQuery,
        qtokens: &[(i64, u32)],
        sink: &mut S,
    ) -> (ExecStats, Completion) {
        match query.budget.as_ref().filter(|b| !b.is_unlimited()) {
            Some(budget) => {
                let mut guarded = BudgetSink::new(sink);
                if let Some(n) = budget.max_verifications() {
                    guarded = guarded.with_max_verifications(n);
                }
                if let Some(n) = budget.max_candidates() {
                    guarded = guarded.with_max_candidates(n);
                }
                if let Some((source, at)) = budget.deadline() {
                    guarded = guarded.with_deadline(source, at);
                }
                let stats = self.probe(query.metric, query.threshold, qtokens, &mut guarded);
                let completion = match guarded.tripped() {
                    Some(reason) => Completion::Truncated { reason },
                    None => Completion::Complete,
                };
                (stats, completion)
            }
            None => (
                self.probe(query.metric, query.threshold, qtokens, sink),
                Completion::Complete,
            ),
        }
    }

    /// The filter-verify scan. Stats mapping onto [`ExecStats`]:
    /// `candidates` = posting entries screened, `verifications` = merge
    /// verifications run, `segment_matches` = matches pushed (the short
    /// lane's counters stay 0 — sets have no short lane).
    fn probe<S: MatchSink + ?Sized>(
        &self,
        metric: SetMetric,
        threshold: f64,
        qtokens: &[(i64, u32)],
        sink: &mut S,
    ) -> ExecStats {
        let mut stats = ExecStats::default();
        let sx = qtokens.len();
        if sx == 0 {
            return stats;
        }
        let tau0 = SetMetric::distance_bound(threshold);
        let mut t_eff = threshold;
        let (mut lo, mut hi) = metric.size_range(t_eff, sx);
        // Probe prefix: the required overlap is smallest against the
        // smallest admissible candidate, so sx − α(sx, lo) + 1 positions
        // suffice for every candidate size at once.
        let mut prefix = sx - metric.min_overlap(t_eff, sx, lo).min(sx) + 1;
        let mut seen: FxHashSet<StringId> = FxHashSet::default();
        let mut jx = 0;
        'scan: while jx < prefix {
            // Top-k steering: a full heap tightens the distance bound,
            // which reads back as a higher effective threshold — shorter
            // prefix, narrower size interval. Matches are still accepted
            // at the *requested* threshold; steering only skips
            // candidates that could not displace the current k-th best.
            let bound = sink.bound(tau0);
            if bound < tau0 {
                let tightened = SetMetric::tightened_threshold(threshold, bound);
                if tightened > t_eff {
                    t_eff = tightened;
                    (lo, hi) = metric.size_range(t_eff, sx);
                    prefix = sx - metric.min_overlap(t_eff, sx, lo).min(sx) + 1;
                    if jx >= prefix {
                        break;
                    }
                }
            }
            let (_, raw) = qtokens[jx];
            if raw == UNKNOWN_RAW {
                jx += 1;
                continue;
            }
            for &(y, jy) in &self.postings[raw as usize] {
                sink.note_candidate();
                if sink.saturated() {
                    break 'scan; // budget tripped: this candidate is skipped
                }
                stats.candidates += 1;
                let Some(ytokens) = self.records[y as usize].as_deref() else {
                    continue;
                };
                let sy = ytokens.len();
                if sy < lo || sy > hi {
                    continue;
                }
                // Positional prefix condition: if |x ∩ y| ≥ α, the
                // rarest shared token sits within the α-suffix margin in
                // *both* sorted arrays, so some posting entry passes.
                let alpha = metric.min_overlap(t_eff, sx, sy);
                if jx + alpha > sx || jy as usize + alpha > sy {
                    continue;
                }
                if !seen.insert(y) {
                    continue;
                }
                sink.note_verification();
                if sink.saturated() {
                    break 'scan; // budget tripped: this verification is skipped
                }
                stats.verifications += 1;
                let o = self.merge_overlap(qtokens, ytokens);
                if metric.accepts(threshold, o, sx, sy) {
                    let dist = metric.scaled_distance(o, sx, sy);
                    sink.push(y, dist);
                    stats.segment_matches += 1;
                    if sink.saturated() {
                        break 'scan;
                    }
                }
            }
            jx += 1;
        }
        stats
    }

    /// Exact `|x ∩ y|` by linear merge over the shared `(key, raw)`
    /// order. Unknown query tokens carry the sentinel raw id and can
    /// never equal an indexed token.
    fn merge_overlap(&self, qtokens: &[(i64, u32)], ytokens: &[SegId]) -> usize {
        let (mut i, mut j, mut o) = (0, 0, 0);
        while i < qtokens.len() && j < ytokens.len() {
            let a = qtokens[i];
            let yraw = ytokens[j].raw();
            let b = (self.key_of[yraw as usize], yraw);
            match a.cmp(&b) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    o += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        o
    }

    fn record_index_gauges(&self) {
        if let Some(obs) = &self.obs {
            obs.record_index(self.live, self.dict.len(), self.posting_entries);
        }
    }
}

impl std::fmt::Debug for SetSimilarityIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetSimilarityIndex")
            .field("mode", &self.mode)
            .field("records", &self.live)
            .field("tokens", &self.dict.len())
            .field("posting_entries", &self.posting_entries)
            .finish_non_exhaustive()
    }
}
