//! **Set-similarity lane**: tokenized records, a prefix-filter inverted
//! index for Jaccard / cosine / overlap thresholds, and a streaming
//! near-duplicate pipeline — on the same engine surface as the
//! edit-distance lane.
//!
//! The edit-distance engine (Pass-Join, Li et al., PVLDB 2011) and the
//! set-similarity family (All-Pairs, Bayardo et al., WWW 2007; PPJoin,
//! Xiao et al., WWW 2008) share one skeleton: order the record, index a
//! signature prefix, probe with size bounds, verify candidates exactly.
//! This crate instantiates that skeleton for token *sets*:
//!
//! * [`TokenMode`] turns record bytes into token sets — ASCII-whitespace
//!   words or byte q-grams (via [`edjoin::grams::qgrams`]), both total
//!   over non-UTF-8 input;
//! * [`SetSimilarityIndex`] interns tokens in a
//!   [`passjoin::intern::SegmentInterner`] dictionary, orders them
//!   rarest-first, and answers [`SetQuery`] requests in the engine's
//!   shapes — plain / top-k / count-only, [`MatchSink`] streaming with
//!   bound steering, [`ExecBudget`] caps — returning the same
//!   [`QueryOutcome`]/[`ExecStats`] the edit-distance lane returns;
//! * [`DedupPipeline`] chains query-before-insert with a [`UnionFind`]
//!   to emit near-duplicate clusters from one streaming pass;
//! * [`SetSimObs`] exports a `passjoin_setsim_*` metrics family over the
//!   shared [`passjoin_obs::Registry`].
//!
//! ```
//! use passjoin_setsim::{SetMetric, SetQuery, SetSimilarityIndex, TokenMode};
//!
//! let corpus: &[&[u8]] = &[b"approximate string joins", b"approximate string join", b"databases"];
//! let index = SetSimilarityIndex::build_from(TokenMode::Grams { q: 2 }, corpus);
//! let hits = index.search(&SetQuery::new(b"approximate string joins", SetMetric::Jaccard, 0.8));
//! assert_eq!(hits.count, 2); // itself and the near-duplicate
//! ```
//!
//! [`MatchSink`]: passjoin::sink::MatchSink
//! [`ExecBudget`]: passjoin_online::ExecBudget
//! [`QueryOutcome`]: passjoin_online::QueryOutcome
//! [`ExecStats`]: passjoin_online::ExecStats

#![warn(missing_docs)]

pub mod dedup;
pub mod index;
pub mod metric;
pub mod obs;
pub mod tokenize;

pub use dedup::{DedupPipeline, UnionFind};
pub use index::{SetQuery, SetSimilarityIndex};
pub use metric::{sorted_overlap, SetMetric, DIST_SCALE};
pub use obs::SetSimObs;
pub use tokenize::TokenMode;
