//! Set-similarity metrics and their prefix-filtering bounds.
//!
//! All three metrics compare *sets* of token ids; `o` is the overlap
//! `|x ∩ y|`, `sx`/`sy` the set sizes. Thresholds live in `(0, 1]`:
//!
//! * **Jaccard** `o / (sx + sy − o)` — size interval
//!   `[⌈t·sx⌉, ⌊sx/t⌋]`, required overlap `⌈t/(1+t)·(sx+sy)⌉`
//!   (PPJoin, Xiao et al., WWW 2008 / TODS 2011);
//! * **Cosine** `o / √(sx·sy)` — size interval `[⌈t²·sx⌉, ⌊sx/t²⌋]`,
//!   required overlap `⌈t·√(sx·sy)⌉` (All-Pairs, Bayardo et al.,
//!   WWW 2007);
//! * **Overlap** `o / min(sx, sy)` — no usable size upper bound,
//!   required overlap `⌈t·min(sx, sy)⌉`.
//!
//! Every accept test is a *division-free* integer-vs-float comparison
//! (`accepts`), and the brute-force differential suite uses the very
//! same function — so index and oracle can never disagree on a
//! borderline pair due to floating-point rounding. The pruning bounds
//! subtract/add a small epsilon before rounding so they only ever err
//! toward admitting an extra candidate, never toward dropping a true
//! match.

/// Scale used to map a similarity in `[0, 1]` onto the integer distance
/// axis of [`passjoin::sink::MatchSink`]: `dist = round((1 − sim) · SCALE)`.
///
/// One unit of distance is one millionth of similarity — far finer than
/// any corpus distinguishes — so top-k ordering over scaled distances
/// matches ordering over the underlying similarity values.
pub const DIST_SCALE: u32 = 1_000_000;

/// Guard band for the floating-point pruning bounds. Rounding the exact
/// real-arithmetic bound may land a hair's breadth on either side of an
/// integer; shifting by `EPS` before `ceil`/`floor` guarantees the bound
/// under-(resp. over-)estimates, so pruning stays lossless.
const EPS: f64 = 1e-7;

/// A set-similarity metric with a threshold semantics of "similarity ≥ t".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetMetric {
    /// `|x ∩ y| / |x ∪ y|`.
    Jaccard,
    /// `|x ∩ y| / √(|x|·|y|)`.
    Cosine,
    /// `|x ∩ y| / min(|x|, |y|)`.
    Overlap,
}

impl SetMetric {
    /// Parses a CLI-style metric name (`jaccard`, `cosine`, `overlap`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "jaccard" => Some(Self::Jaccard),
            "cosine" => Some(Self::Cosine),
            "overlap" => Some(Self::Overlap),
            _ => None,
        }
    }

    /// The metric's canonical lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Jaccard => "jaccard",
            Self::Cosine => "cosine",
            Self::Overlap => "overlap",
        }
    }

    /// The similarity value for overlap `o` between sets of sizes `sx`
    /// and `sy`. Empty sets have similarity 0 to everything (including
    /// each other) — an empty record matches nothing.
    pub fn similarity(&self, o: usize, sx: usize, sy: usize) -> f64 {
        if sx == 0 || sy == 0 {
            return 0.0;
        }
        let (o, sx, sy) = (o as f64, sx as f64, sy as f64);
        match self {
            Self::Jaccard => o / (sx + sy - o),
            Self::Cosine => o / (sx * sy).sqrt(),
            Self::Overlap => o / sx.min(sy),
        }
    }

    /// Whether overlap `o` between sets of sizes `sx`, `sy` meets
    /// threshold `t` — i.e. `similarity ≥ t`, evaluated division-free so
    /// the test is exact for all corpus-scale inputs. Empty sets never
    /// match.
    pub fn accepts(&self, t: f64, o: usize, sx: usize, sy: usize) -> bool {
        if o == 0 {
            // t > 0 always demands some overlap; also enforces the
            // empty-set rule without a special case.
            return false;
        }
        let (fo, fx, fy) = (o as f64, sx as f64, sy as f64);
        match self {
            // o/(sx+sy−o) ≥ t  ⟺  o·(1+t) ≥ t·(sx+sy)
            Self::Jaccard => fo * (1.0 + t) >= t * (fx + fy),
            // o/√(sx·sy) ≥ t  ⟺  o² ≥ t²·sx·sy
            Self::Cosine => fo * fo >= t * t * fx * fy,
            Self::Overlap => fo >= t * fx.min(fy),
        }
    }

    /// The minimum overlap α(sx, sy, t) any accepted pair must have — a
    /// safe under-estimate (never larger than the true requirement), at
    /// least 1.
    pub fn min_overlap(&self, t: f64, sx: usize, sy: usize) -> usize {
        let (fx, fy) = (sx as f64, sy as f64);
        let raw = match self {
            Self::Jaccard => t / (1.0 + t) * (fx + fy),
            Self::Cosine => t * (fx * fy).sqrt(),
            Self::Overlap => t * fx.min(fy),
        };
        (raw - EPS).ceil().max(1.0) as usize
    }

    /// The interval `[lo, hi]` of candidate-set sizes that could meet
    /// threshold `t` against a set of size `sx` (length-interval
    /// pruning). `lo ≥ 1`; for the overlap metric `hi` is unbounded
    /// (`usize::MAX`).
    pub fn size_range(&self, t: f64, sx: usize) -> (usize, usize) {
        let fx = sx as f64;
        let (lo, hi) = match self {
            Self::Jaccard => ((t * fx - EPS).ceil(), (fx / t + EPS).floor()),
            Self::Cosine => ((t * t * fx - EPS).ceil(), (fx / (t * t) + EPS).floor()),
            Self::Overlap => (1.0, f64::MAX),
        };
        let lo = lo.max(1.0) as usize;
        let hi = if hi >= usize::MAX as f64 {
            usize::MAX
        } else {
            hi as usize
        };
        (lo, hi)
    }

    /// The similarity scaled onto the sink distance axis:
    /// `round((1 − sim) · DIST_SCALE)`, so *smaller is more similar* and
    /// `TopKSink` keeps the k most-similar matches.
    pub fn scaled_distance(&self, o: usize, sx: usize, sy: usize) -> usize {
        let sim = self.similarity(o, sx, sy).clamp(0.0, 1.0);
        ((1.0 - sim) * DIST_SCALE as f64).round() as usize
    }

    /// The largest scaled distance any match at threshold `t` can have —
    /// the initial `tau` handed to [`passjoin::sink::MatchSink::bound`]
    /// for top-k steering. One extra unit absorbs `scaled_distance`'s
    /// rounding.
    pub fn distance_bound(t: f64) -> usize {
        ((1.0 - t) * DIST_SCALE as f64).ceil() as usize + 1
    }

    /// The threshold implied by a sink distance bound `b`: matches
    /// scoring worse (greater distance) than `b` are unwanted, so the
    /// probe may tighten to `t_eff = 1 − (b + 1)/DIST_SCALE` (the `+1`
    /// absorbs `scaled_distance` rounding). Never loosens below the
    /// requested `t`.
    pub fn tightened_threshold(t: f64, bound: usize) -> f64 {
        let implied = 1.0 - (bound as f64 + 1.0) / DIST_SCALE as f64;
        implied.max(t)
    }
}

/// The exact overlap `|x ∩ y|` of two strictly-sorted slices, by linear
/// merge. Both slices must be sorted under the same total order and
/// duplicate-free (token *sets*).
pub fn sorted_overlap<T: Ord>(x: &[T], y: &[T]) -> usize {
    let (mut i, mut j, mut o) = (0, 0, 0);
    while i < x.len() && j < y.len() {
        match x[i].cmp(&y[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                o += 1;
                i += 1;
                j += 1;
            }
        }
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn similarity_formulas() {
        let m = SetMetric::Jaccard;
        assert!((m.similarity(2, 3, 3) - 0.5).abs() < 1e-12);
        let m = SetMetric::Cosine;
        assert!((m.similarity(2, 4, 1) - 1.0).abs() < 1e-12);
        let m = SetMetric::Overlap;
        assert!((m.similarity(2, 2, 5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accepts_matches_similarity_threshold() {
        for metric in [SetMetric::Jaccard, SetMetric::Cosine, SetMetric::Overlap] {
            for sx in 1..=12usize {
                for sy in 1..=12usize {
                    for o in 0..=sx.min(sy) {
                        for t in [0.3, 0.5, 0.75, 0.8, 1.0] {
                            let sim = metric.similarity(o, sx, sy);
                            // Away from the boundary the two must agree;
                            // at the boundary `accepts` is the canonical
                            // answer (division-free, hence exact).
                            if (sim - t).abs() > 1e-9 {
                                assert_eq!(
                                    metric.accepts(t, o, sx, sy),
                                    sim >= t,
                                    "{metric:?} t={t} o={o} sx={sx} sy={sy}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn min_overlap_is_a_valid_lower_bound() {
        for metric in [SetMetric::Jaccard, SetMetric::Cosine, SetMetric::Overlap] {
            for sx in 1..=15usize {
                for sy in 1..=15usize {
                    for t in [0.3, 0.5, 0.8, 0.9, 1.0] {
                        let alpha = metric.min_overlap(t, sx, sy);
                        // No accepted overlap may fall below alpha.
                        for o in 0..alpha.min(sx.min(sy) + 1) {
                            assert!(
                                !metric.accepts(t, o, sx, sy),
                                "{metric:?} t={t} o={o} < α={alpha} accepted (sx={sx}, sy={sy})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn size_range_is_a_valid_interval() {
        for metric in [SetMetric::Jaccard, SetMetric::Cosine, SetMetric::Overlap] {
            for sx in 1..=15usize {
                for t in [0.3, 0.5, 0.8, 1.0] {
                    let (lo, hi) = metric.size_range(t, sx);
                    for sy in 1..=30usize {
                        if sy < lo || sy > hi {
                            // Outside the interval even total overlap fails.
                            let o = sx.min(sy);
                            assert!(
                                !metric.accepts(t, o, sx, sy),
                                "{metric:?} t={t} sx={sx} sy={sy} outside [{lo},{hi}] but accepted"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_sets_never_match() {
        for metric in [SetMetric::Jaccard, SetMetric::Cosine, SetMetric::Overlap] {
            assert!(!metric.accepts(0.5, 0, 0, 0));
            assert!(!metric.accepts(0.5, 0, 0, 3));
            assert_eq!(metric.similarity(0, 0, 0), 0.0);
        }
    }

    #[test]
    fn scaled_distance_orders_by_similarity() {
        let m = SetMetric::Jaccard;
        let d_exact = m.scaled_distance(3, 3, 3);
        let d_close = m.scaled_distance(3, 3, 4);
        let d_far = m.scaled_distance(1, 3, 4);
        assert_eq!(d_exact, 0);
        assert!(d_exact < d_close && d_close < d_far);
        // A match at threshold t never exceeds the steering bound.
        for t in [0.3, 0.8, 1.0] {
            let b = SetMetric::distance_bound(t);
            for (o, sx, sy) in [(4, 5, 5), (8, 10, 10), (1, 1, 1)] {
                if m.accepts(t, o, sx, sy) {
                    assert!(m.scaled_distance(o, sx, sy) <= b);
                }
            }
        }
    }

    #[test]
    fn sorted_overlap_merges() {
        assert_eq!(sorted_overlap(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]), 2);
        assert_eq!(sorted_overlap::<u32>(&[], &[1]), 0);
        assert_eq!(sorted_overlap(&[1, 2], &[1, 2]), 2);
    }

    #[test]
    fn parse_round_trips() {
        for m in [SetMetric::Jaccard, SetMetric::Cosine, SetMetric::Overlap] {
            assert_eq!(SetMetric::parse(m.name()), Some(m));
        }
        assert_eq!(SetMetric::parse("dice"), None);
    }
}
