//! The `passjoin_setsim_*` metrics family — the set-similarity lane's
//! counterpart of the edit-distance engine's `EngineObs`, over the same
//! shared [`Registry`].
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `passjoin_setsim_requests_total` | counter | search requests answered |
//! | `passjoin_setsim_candidates_total` | counter | posting entries screened |
//! | `passjoin_setsim_verifications_total` | counter | merge verifications run |
//! | `passjoin_setsim_matches_total` | counter | matches accepted |
//! | `passjoin_setsim_truncated_total` | counter | requests cut short by a budget |
//! | `passjoin_setsim_inserts_total` | counter | records inserted |
//! | `passjoin_setsim_removes_total` | counter | records removed |
//! | `passjoin_setsim_request_ns` | histogram | per-request wall time (ns) |
//! | `passjoin_setsim_index_records` | gauge | live records |
//! | `passjoin_setsim_index_tokens` | gauge | distinct dictionary tokens |
//! | `passjoin_setsim_index_postings` | gauge | live posting entries |
//!
//! Counter totals reconcile exactly with summed per-request
//! [`ExecStats`]: `candidates_total` = Σ `stats.candidates`,
//! `verifications_total` = Σ `stats.verifications`, `matches_total` =
//! Σ `stats.segment_matches` — pinned by the differential suite and the
//! CI dedup smoke.

use std::sync::Arc;

use passjoin_obs::{Counter, Gauge, Histogram, Registry};
use passjoin_online::{Completion, ExecStats};

/// Handles to the `passjoin_setsim_*` instruments. Attach to a
/// [`SetSimilarityIndex`](crate::SetSimilarityIndex) via
/// `set_observability`; share the registry with other engine families to
/// get one merged dump.
pub struct SetSimObs {
    registry: Arc<Registry>,
    requests: Counter,
    candidates: Counter,
    verifications: Counter,
    matches: Counter,
    truncated: Counter,
    inserts: Counter,
    removes: Counter,
    request_ns: Histogram,
    index_records: Gauge,
    index_tokens: Gauge,
    index_postings: Gauge,
}

impl SetSimObs {
    /// Instruments registered on a fresh private registry.
    pub fn new() -> Self {
        Self::with_registry(Arc::new(Registry::new()))
    }

    /// Instruments registered on a shared registry (one dump for the
    /// whole process).
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        let c = |name: &str| registry.counter(name);
        let g = |name: &str| registry.gauge(name);
        Self {
            requests: c("passjoin_setsim_requests_total"),
            candidates: c("passjoin_setsim_candidates_total"),
            verifications: c("passjoin_setsim_verifications_total"),
            matches: c("passjoin_setsim_matches_total"),
            truncated: c("passjoin_setsim_truncated_total"),
            inserts: c("passjoin_setsim_inserts_total"),
            removes: c("passjoin_setsim_removes_total"),
            request_ns: registry.histogram("passjoin_setsim_request_ns"),
            index_records: g("passjoin_setsim_index_records"),
            index_tokens: g("passjoin_setsim_index_tokens"),
            index_postings: g("passjoin_setsim_index_postings"),
            registry,
        }
    }

    /// The backing registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Records one answered request: its counters, truncation, and wall
    /// time.
    pub fn record_request(&self, stats: &ExecStats, completion: &Completion, total_ns: u64) {
        self.requests.inc(1);
        self.candidates.inc(stats.candidates);
        self.verifications.inc(stats.verifications);
        self.matches.inc(stats.segment_matches);
        if !completion.is_complete() {
            self.truncated.inc(1);
        }
        self.request_ns.observe(total_ns);
    }

    /// Bumps the insert counter.
    pub fn note_insert(&self) {
        self.inserts.inc(1);
    }

    /// Bumps the remove counter.
    pub fn note_remove(&self) {
        self.removes.inc(1);
    }

    /// Publishes index-shape gauges.
    pub fn record_index(&self, records: usize, tokens: usize, postings: u64) {
        let clamp = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
        self.index_records.set(clamp(records as u64));
        self.index_tokens.set(clamp(tokens as u64));
        self.index_postings.set(clamp(postings));
    }

    /// Prometheus text dump of the backing registry.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// JSON dump of the backing registry.
    pub fn render_json(&self) -> String {
        self.registry.render_json()
    }
}

impl Default for SetSimObs {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SetSimObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetSimObs")
            .field("requests", &self.requests.get())
            .field("candidates", &self.candidates.get())
            .field("verifications", &self.verifications.get())
            .finish_non_exhaustive()
    }
}
