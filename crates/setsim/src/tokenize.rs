//! Byte-transparent tokenization of records into token *sets*.
//!
//! Two modes, both total over arbitrary byte strings (no UTF-8
//! assumption, no panics on hostile input):
//!
//! * [`TokenMode::Words`] — maximal runs of non-ASCII-whitespace bytes.
//!   Splitting only on the six ASCII whitespace bytes keeps multi-byte
//!   UTF-8 sequences (and arbitrary binary runs) intact without ever
//!   decoding them.
//! * [`TokenMode::Grams`] — overlapping q-grams via
//!   [`edjoin::grams::qgrams`], the same byte windows the ED-Join lane
//!   uses. Records shorter than `q` bytes produce the empty set.
//!
//! The output is always a *set*: duplicates removed, order normalized
//! (lexicographic by bytes). Set-similarity metrics are defined on sets,
//! so multiplicity is dropped at the door.

use edjoin::grams::qgrams;

/// How a record's bytes become tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenMode {
    /// Runs of bytes separated by ASCII whitespace.
    Words,
    /// Overlapping byte windows of length `q` (`q ≥ 1`).
    Grams {
        /// The gram length.
        q: usize,
    },
}

impl TokenMode {
    /// Parses a CLI-style mode name: `words`, or `grams` (pair with a
    /// separate `q`).
    pub fn parse(name: &str, q: usize) -> Option<Self> {
        match name {
            "words" => Some(Self::Words),
            "grams" => {
                if q >= 1 {
                    Some(Self::Grams { q })
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// The distinct tokens of `record` under this mode, sorted by bytes.
    /// Total over arbitrary byte content; empty records (and, in gram
    /// mode, records shorter than `q`) yield the empty set.
    pub fn token_set<'a>(&self, record: &'a [u8]) -> Vec<&'a [u8]> {
        let mut tokens: Vec<&[u8]> = match self {
            Self::Words => record
                .split(|b| b.is_ascii_whitespace())
                .filter(|t| !t.is_empty())
                .collect(),
            Self::Grams { q } => qgrams(record, *q).collect(),
        };
        tokens.sort_unstable();
        tokens.dedup();
        tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_split_on_ascii_whitespace_only() {
        let toks = TokenMode::Words.token_set(b"the  quick\tthe\nfox");
        assert_eq!(toks, vec![&b"fox"[..], b"quick", b"the"]);
        // 0xA0 (non-breaking space in latin-1) is NOT ASCII whitespace:
        // it must stay inside a token, not split it.
        let toks = TokenMode::Words.token_set(b"a\xa0b c");
        assert_eq!(toks, vec![&b"a\xa0b"[..], b"c"]);
    }

    #[test]
    fn grams_are_byte_windows() {
        let toks = TokenMode::Grams { q: 2 }.token_set(b"abab");
        assert_eq!(toks, vec![&b"ab"[..], b"ba"]);
        assert!(TokenMode::Grams { q: 3 }.token_set(b"ab").is_empty());
    }

    #[test]
    fn empty_records_yield_empty_sets() {
        assert!(TokenMode::Words.token_set(b"").is_empty());
        assert!(TokenMode::Words.token_set(b" \t\n ").is_empty());
        assert!(TokenMode::Grams { q: 2 }.token_set(b"").is_empty());
    }

    #[test]
    fn parse_modes() {
        assert_eq!(TokenMode::parse("words", 0), Some(TokenMode::Words));
        assert_eq!(
            TokenMode::parse("grams", 3),
            Some(TokenMode::Grams { q: 3 })
        );
        assert_eq!(TokenMode::parse("grams", 0), None);
        assert_eq!(TokenMode::parse("chars", 1), None);
    }
}
