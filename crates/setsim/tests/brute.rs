//! Differential suite: the prefix-filter index must agree exactly with
//! brute-force all-pairs overlap on every metric × threshold ×
//! tokenizer mode, and the dedup pipeline's clusters must equal the
//! brute-force transitive closure of the match relation.
//!
//! Both sides score a pair through the *same* division-free
//! `SetMetric::accepts` test, so agreement is exact equality — no
//! epsilon tolerance anywhere.

use passjoin_setsim::{
    sorted_overlap, DedupPipeline, SetMetric, SetQuery, SetSimilarityIndex, TokenMode, UnionFind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const METRICS: [SetMetric; 3] = [SetMetric::Jaccard, SetMetric::Cosine, SetMetric::Overlap];
const THRESHOLDS: [f64; 6] = [0.3, 0.5, 0.7, 0.8, 0.9, 1.0];
const MODES: [TokenMode; 3] = [
    TokenMode::Words,
    TokenMode::Grams { q: 2 },
    TokenMode::Grams { q: 3 },
];

/// A corpus of random word-ish records plus planted near-duplicates.
fn corpus(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Vec<u8>> = Vec::with_capacity(n);
    while out.len() < n {
        if !out.is_empty() && rng.gen_bool(0.3) {
            // Plant a near-duplicate: copy an earlier record, mutate a
            // couple of characters.
            let base = out[rng.gen_range(0..out.len())].clone();
            let mut dup = base;
            for _ in 0..rng.gen_range(1..=2usize) {
                if dup.is_empty() {
                    break;
                }
                let pos = rng.gen_range(0..dup.len());
                dup[pos] = b'a' + rng.gen_range(0..26) as u8;
            }
            out.push(dup);
        } else {
            // Fresh record: 2–6 short words over a small alphabet so
            // overlaps actually occur.
            let words = rng.gen_range(2..=6usize);
            let mut rec = Vec::new();
            for w in 0..words {
                if w > 0 {
                    rec.push(b' ');
                }
                let len = rng.gen_range(2..=5usize);
                for _ in 0..len {
                    rec.push(b'a' + rng.gen_range(0..8) as u8);
                }
            }
            out.push(rec);
        }
    }
    out
}

/// Brute force: every record whose token set passes `accepts` against
/// the query's, with its scaled distance — sorted ascending by id.
fn brute_matches(
    records: &[Vec<u8>],
    mode: TokenMode,
    query: &[u8],
    metric: SetMetric,
    t: f64,
) -> Vec<(u32, usize)> {
    let q = mode.token_set(query);
    let mut out = Vec::new();
    for (id, r) in records.iter().enumerate() {
        let y = mode.token_set(r);
        let o = sorted_overlap(&q, &y);
        if metric.accepts(t, o, q.len(), y.len()) {
            out.push((id as u32, metric.scaled_distance(o, q.len(), y.len())));
        }
    }
    out
}

#[test]
fn index_matches_brute_force_on_planted_corpus() {
    let records = corpus(120, 42);
    for mode in MODES {
        let index = SetSimilarityIndex::build_from(mode, &records);
        for metric in METRICS {
            for t in THRESHOLDS {
                for (qid, qtext) in records.iter().enumerate().step_by(7) {
                    let expected = brute_matches(&records, mode, qtext, metric, t);
                    let got = index
                        .search(&SetQuery::new(qtext, metric, t))
                        .into_matches();
                    assert_eq!(
                        got, expected,
                        "{metric:?} t={t} {mode:?} query #{qid} diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn incremental_insert_matches_build_from() {
    // First-seen token order (incremental) differs from rarest-first
    // (build_from); the answers must not.
    let records = corpus(80, 7);
    for mode in [TokenMode::Words, TokenMode::Grams { q: 2 }] {
        let built = SetSimilarityIndex::build_from(mode, &records);
        let mut grown = SetSimilarityIndex::new(mode);
        for r in &records {
            grown.insert(r);
        }
        for metric in METRICS {
            for t in [0.5, 0.8] {
                for qtext in records.iter().step_by(5) {
                    let a = built
                        .search(&SetQuery::new(qtext, metric, t))
                        .into_matches();
                    let b = grown
                        .search(&SetQuery::new(qtext, metric, t))
                        .into_matches();
                    assert_eq!(a, b, "{metric:?} t={t} {mode:?} build orders diverged");
                }
            }
        }
    }
}

#[test]
fn remove_drops_matches_exactly() {
    let records = corpus(60, 13);
    let mode = TokenMode::Grams { q: 2 };
    let mut index = SetSimilarityIndex::build_from(mode, &records);
    // Remove every third record; brute force over the survivors.
    let removed: Vec<u32> = (0..records.len() as u32).step_by(3).collect();
    for &id in &removed {
        assert!(index.remove(id));
        assert!(!index.remove(id), "double remove must report false");
    }
    let survivors: Vec<(u32, &Vec<u8>)> = records
        .iter()
        .enumerate()
        .map(|(i, r)| (i as u32, r))
        .filter(|(i, _)| !removed.contains(i))
        .collect();
    for metric in METRICS {
        for qtext in records.iter().step_by(4) {
            let q = mode.token_set(qtext);
            let mut expected = Vec::new();
            for &(id, r) in &survivors {
                let y = mode.token_set(r);
                let o = sorted_overlap(&q, &y);
                if metric.accepts(0.6, o, q.len(), y.len()) {
                    expected.push((id, metric.scaled_distance(o, q.len(), y.len())));
                }
            }
            let got = index
                .search(&SetQuery::new(qtext, metric, 0.6))
                .into_matches();
            assert_eq!(got, expected, "{metric:?} after removals diverged");
        }
    }
}

#[test]
fn topk_and_count_shapes_agree_with_full_results() {
    let records = corpus(100, 99);
    let mode = TokenMode::Grams { q: 2 };
    let index = SetSimilarityIndex::build_from(mode, &records);
    for metric in METRICS {
        for t in [0.3, 0.5, 0.8] {
            for qtext in records.iter().step_by(9) {
                let full = brute_matches(&records, mode, qtext, metric, t);
                // Count-only reports the full count; capped count clips.
                let counted = index.search(&SetQuery::new(qtext, metric, t).count_only());
                assert_eq!(counted.count, full.len());
                assert!(counted.matches.is_empty());
                let capped =
                    index.search(&SetQuery::new(qtext, metric, t).with_limit(2).count_only());
                assert_eq!(capped.count, full.len().min(2));
                // Top-k: ascending (dist, id), exactly the k best of the
                // full result under the same ordering.
                for k in [1, 3, 10] {
                    let got = index
                        .search(&SetQuery::new(qtext, metric, t).with_limit(k))
                        .into_matches();
                    let mut best: Vec<(usize, u32)> = full.iter().map(|&(id, d)| (d, id)).collect();
                    best.sort_unstable();
                    best.truncate(k);
                    let want: Vec<(u32, usize)> = best.into_iter().map(|(d, id)| (id, d)).collect();
                    assert_eq!(got, want, "{metric:?} t={t} k={k} top-k diverged");
                }
            }
        }
    }
}

#[test]
fn budget_truncation_is_reported() {
    use passjoin_online::{Completion, ExecBudget};
    let records = corpus(100, 5);
    let index = SetSimilarityIndex::build_from(TokenMode::Grams { q: 2 }, &records);
    let q = SetQuery::new(&records[0], SetMetric::Jaccard, 0.3)
        .with_budget(ExecBudget::default().with_max_verifications(0));
    let outcome = index.search(&q);
    assert!(matches!(outcome.completion, Completion::Truncated { .. }));
    assert_eq!(outcome.stats.verifications, 0);
    // An unlimited run on the same query is complete and finds matches.
    let outcome = index.search(&SetQuery::new(&records[0], SetMetric::Jaccard, 0.3));
    assert!(outcome.completion.is_complete());
    assert!(outcome.count >= 1, "a record must match itself at t=0.3");
}

#[test]
fn dedup_clusters_equal_brute_force_transitive_closure() {
    for (mode, metric, t) in [
        (TokenMode::Words, SetMetric::Jaccard, 0.5),
        (TokenMode::Grams { q: 2 }, SetMetric::Jaccard, 0.8),
        (TokenMode::Grams { q: 2 }, SetMetric::Cosine, 0.8),
        (TokenMode::Grams { q: 3 }, SetMetric::Overlap, 0.9),
    ] {
        let records = corpus(150, 21);
        let mut pipeline = DedupPipeline::new(mode, metric, t);
        for r in &records {
            pipeline.push(r);
        }
        // Oracle: union every accepting pair (i < j), then compare the
        // multi-member components.
        let sets: Vec<Vec<&[u8]>> = records.iter().map(|r| mode.token_set(r)).collect();
        let mut uf = UnionFind::new(records.len());
        for i in 0..records.len() {
            for j in i + 1..records.len() {
                let o = sorted_overlap(&sets[i], &sets[j]);
                if metric.accepts(t, o, sets[i].len(), sets[j].len()) {
                    uf.union(i as u32, j as u32);
                }
            }
        }
        assert_eq!(
            pipeline.clusters(),
            uf.clusters(),
            "{metric:?} t={t} {mode:?} clusters diverged"
        );
        assert_eq!(pipeline.requests(), records.len() as u64);
        // The prefix filter must do real filtering: strictly fewer
        // verifications than the all-pairs oracle ran comparisons.
        let all_pairs = (records.len() * (records.len() - 1) / 2) as u64;
        assert!(
            pipeline.stats().verifications < all_pairs,
            "{metric:?} t={t} {mode:?}: {} verifications ≥ {} brute pairs",
            pipeline.stats().verifications,
            all_pairs
        );
    }
}

#[test]
fn observability_reconciles_with_summed_stats() {
    use passjoin_setsim::SetSimObs;
    use std::sync::Arc;

    let records = corpus(80, 3);
    let obs = Arc::new(SetSimObs::new());
    let mut index = SetSimilarityIndex::build_from(TokenMode::Grams { q: 2 }, &records);
    index.set_observability(Some(obs.clone()));
    let mut total = passjoin_online::ExecStats::default();
    let mut requests = 0u64;
    for qtext in records.iter().step_by(3) {
        let outcome = index.search(&SetQuery::new(qtext, SetMetric::Jaccard, 0.7));
        total.merge(&outcome.stats);
        requests += 1;
    }
    let dump = obs.render_prometheus();
    let value = |name: &str| -> u64 {
        dump.lines()
            .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing from dump"))
    };
    assert_eq!(value("passjoin_setsim_requests_total"), requests);
    assert_eq!(value("passjoin_setsim_candidates_total"), total.candidates);
    assert_eq!(
        value("passjoin_setsim_verifications_total"),
        total.verifications
    );
    assert_eq!(
        value("passjoin_setsim_matches_total"),
        total.segment_matches
    );
    assert_eq!(value("passjoin_setsim_index_records"), records.len() as u64);
}
