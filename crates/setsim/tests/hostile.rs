//! Tokenizer hardening: arbitrary byte corpora — all 256 byte values,
//! empty records, single-token records — must never panic, in either
//! tokenizer mode, through tokenization, indexing, search, and dedup.

use passjoin_setsim::{DedupPipeline, SetMetric, SetQuery, SetSimilarityIndex, TokenMode};

/// Every byte value 0..=255 once, in order.
fn all_bytes() -> Vec<u8> {
    (0u8..=255).collect()
}

/// A hostile corpus: full byte range, empties, singles, whitespace-only,
/// UTF-8 fragments cut mid-sequence.
fn hostile_corpus() -> Vec<Vec<u8>> {
    vec![
        all_bytes(),
        Vec::new(),
        vec![b'x'],
        vec![0x00],
        vec![0xff],
        b" \t\r\n\x0b\x0c".to_vec(),
        b"\xe4\xb8".to_vec(),         // truncated 3-byte UTF-8 sequence
        b"caf\xe9 au lait".to_vec(),  // latin-1, invalid UTF-8
        b"\x80\x80\x80\x80".to_vec(), // bare continuation bytes
        vec![0x00, b' ', 0x00],       // NUL "words"
        all_bytes().repeat(2),
        b"single".to_vec(),
        b"  padded  ".to_vec(),
    ]
}

fn modes() -> [TokenMode; 4] {
    [
        TokenMode::Words,
        TokenMode::Grams { q: 1 },
        TokenMode::Grams { q: 2 },
        TokenMode::Grams { q: 4 },
    ]
}

#[test]
fn tokenizing_hostile_bytes_never_panics() {
    for mode in modes() {
        for rec in hostile_corpus() {
            let toks = mode.token_set(&rec);
            // Set invariant: strictly sorted, no duplicates.
            for w in toks.windows(2) {
                assert!(w[0] < w[1], "{mode:?} produced unsorted/dup tokens");
            }
            if rec.is_empty() {
                assert!(toks.is_empty());
            }
        }
    }
}

#[test]
fn word_mode_splits_on_ascii_whitespace_only() {
    // Every non-ASCII-whitespace byte — including 0x00, 0x80, 0xA0, 0xFF
    // — must survive inside a token.
    for b in 0u8..=255 {
        let rec = [b'a', b, b'z'];
        let toks = TokenMode::Words.token_set(&rec);
        if b.is_ascii_whitespace() {
            assert_eq!(toks, vec![&b"a"[..], b"z"], "byte {b:#x} must split");
        } else {
            assert_eq!(toks, vec![&rec[..]], "byte {b:#x} must not split");
        }
    }
}

#[test]
fn gram_mode_is_byte_transparent() {
    let rec = all_bytes();
    let toks = TokenMode::Grams { q: 2 }.token_set(&rec);
    assert_eq!(toks.len(), 255, "255 distinct consecutive-byte bigrams");
    // Single-byte record under q=1: one token, itself.
    assert_eq!(
        TokenMode::Grams { q: 1 }.token_set(&[0x9c]),
        vec![&[0x9c][..]]
    );
    // Shorter than q: empty set.
    assert!(TokenMode::Grams { q: 4 }.token_set(b"abc").is_empty());
}

#[test]
fn index_and_search_survive_hostile_corpus() {
    let records = hostile_corpus();
    for mode in modes() {
        let index = SetSimilarityIndex::build_from(mode, &records);
        for metric in [SetMetric::Jaccard, SetMetric::Cosine, SetMetric::Overlap] {
            for (id, rec) in records.iter().enumerate() {
                let outcome = index.search(&SetQuery::new(rec, metric, 0.8));
                let toks = mode.token_set(rec);
                if toks.is_empty() {
                    assert_eq!(
                        outcome.count, 0,
                        "{mode:?} {metric:?}: empty token set must match nothing"
                    );
                } else {
                    assert!(
                        outcome
                            .matches
                            .iter()
                            .any(|&(m, d)| m == id as u32 && d == 0),
                        "{mode:?} {metric:?}: record {id} must match itself exactly"
                    );
                }
            }
        }
    }
}

#[test]
fn dedup_survives_hostile_corpus() {
    for mode in modes() {
        let mut pipeline = DedupPipeline::new(mode, SetMetric::Jaccard, 0.8);
        for rec in hostile_corpus() {
            pipeline.push(&rec);
        }
        // The two identical all-bytes-derived records (all_bytes vs its
        // repeat share the token set under gram modes ≥ 2 only when the
        // wraparound grams coincide — don't assert that; just require
        // determinism and no panic).
        let a = pipeline.clusters();
        let b = pipeline.clusters();
        assert_eq!(a, b, "{mode:?}: clusters must be deterministic");
    }
}

#[test]
fn single_token_records_match_only_exactly() {
    let mut index = SetSimilarityIndex::new(TokenMode::Words);
    let a = index.insert(b"solo");
    index.insert(b"duet");
    // Jaccard on 1-token sets is 0 or 1: at t=0.5 only the identical set
    // matches.
    let hits = index
        .search(&SetQuery::new(b"solo", SetMetric::Jaccard, 0.5))
        .into_matches();
    assert_eq!(hits, vec![(a, 0)]);
}
