//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — benchmark
//! groups, [`BenchmarkId`], [`Throughput`], `bench_with_input`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a plain
//! wall-clock measurement loop: a short calibration phase sizes batches so
//! each sample runs ≥ ~5 ms, then `sample_size` samples are taken and the
//! minimum / median / maximum per-iteration times are printed. No HTML
//! reports, no statistical regression analysis — numbers on stdout, enough
//! to compare configurations within one run.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related measurements.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// Identifies one measurement: a function name plus a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// `function/parameter`, matching criterion's display convention.
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

/// Units processed per iteration, for derived throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of measurements sharing a name and configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per measurement.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Declares per-iteration throughput for subsequent measurements.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measures `f(bencher, input)`; `f` must call [`Bencher::iter`].
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        self.report(&id, &bencher.samples);
        self
    }

    /// Measures a closure with no input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        self.report(&id, &bencher.samples);
        self
    }

    /// Ends the group (printing happens per measurement).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort_unstable();
        let (min, max) = (sorted[0], sorted[sorted.len() - 1]);
        let median = sorted[sorted.len() / 2];
        let label = format!("{}/{}/{}", self.name, id.function, id.parameter);
        print!(
            "{label:<60} time: [{} {} {}]",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(max)
        );
        if let Some(throughput) = self.throughput {
            let per_sec = |units: u64| units as f64 / median.as_secs_f64();
            match throughput {
                Throughput::Elements(n) => print!("  thrpt: {}/s", fmt_count(per_sec(n))),
                Throughput::Bytes(n) => print!("  thrpt: {}B/s", fmt_count(per_sec(n))),
            }
        }
        println!();
    }
}

/// Runs and times the measured closure.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`: calibrates a batch size targeting ≥ ~5 ms per sample,
    /// then records `sample_size` samples of the mean per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        const TARGET: Duration = Duration::from_millis(5);
        // Calibrate: double the batch until it takes long enough to time.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= TARGET || batch >= 1 << 20 {
                break;
            }
            batch = if elapsed.is_zero() {
                batch * 16
            } else {
                (batch * 2).max((TARGET.as_nanos() / elapsed.as_nanos().max(1)) as u64)
            };
        }
        self.samples = (0..self.sample_size)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                t.elapsed() / batch as u32
            })
            .collect();
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn fmt_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.3} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.3} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.3} K", v / 1e3)
    } else {
        format!("{v:.1} ")
    }
}

/// Declares a group-runner function over benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running one or more `criterion_group!` groups.
/// Ignores harness CLI arguments (`--bench`, filters) that cargo passes.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-self-test");
        group.sample_size(3);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn formatting_is_sane() {
        assert!(fmt_duration(Duration::from_nanos(12)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
        assert_eq!(fmt_count(1_500.0), "1.500 K");
        assert_eq!(fmt_count(2_500_000.0), "2.500 M");
    }
}
