//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` header),
//! [`strategy::Strategy`] with integer-range / [`strategy::Just`] /
//! [`prop_oneof!`] / tuple / [`collection::vec`] strategies, [`arbitrary::any`],
//! and the `prop_assert*` macros. Cases are generated from a deterministic
//! per-test seed; there is **no shrinking** — a failing case panics with the
//! case number and the failed assertion, and the deterministic seed makes it
//! reproducible by re-running the test.

#[doc(hidden)]
pub use rand as __rand;

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::{Rng, RngCore};
    use std::ops::{Range, RangeInclusive};

    /// Generates values of an output type from a seeded RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    /// `&S` is a strategy wherever `S` is (lets strategies be shared).
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (backs the `prop_oneof!` macro).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `arms` must be non-empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let k = (rng.next_u64() as usize) % self.arms.len();
            self.arms[k].generate(rng)
        }
    }

    /// Boxes a strategy for [`Union`] (used by [`crate::prop_oneof!`]).
    pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(strategy)
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies for primitive types.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Strategy over the full domain of `T` (see [`any`]).
    pub struct Any<T>(PhantomData<T>);

    /// The full-domain strategy for a primitive type.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(PhantomData)
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, len_range)` — the proptest collection constructor.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "empty length range in collection::vec");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-case plumbing used by the [`crate::proptest!`] macro.

    /// Number of generated cases per property.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// How many random cases each `#[test]` runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real crate's default is 256; property bodies in this
            // workspace are heavyweight (whole joins), so stay comparable.
            Self { cases: 256 }
        }
    }

    /// A failed property case (carries the assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail<S: Into<String>>(msg: S) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-test seed: FNV-1a over the test path, so every
    /// test has its own reproducible stream independent of run order.
    pub fn seed_for(test_path: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each function runs `cases` times with fresh
/// strategy-generated arguments. No shrinking; failures report the case
/// number and are reproducible (fixed per-test seed).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let seed = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut __rng =
                <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(seed);
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest case {}/{} of {} failed: {}",
                        __case + 1, config.cases, stringify!($name), e
                    );
                }
            }
        }
    )*};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Asserts inside a property body (returns an `Err` instead of panicking,
/// so the harness can report the case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {:?} != {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(v in crate::collection::vec(0u8..10, 1..20), x in 3usize..7) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&b| b < 10));
            prop_assert!((3..7).contains(&x));
        }

        #[test]
        fn oneof_and_tuples(pair in (prop_oneof![Just(1u32), Just(2), Just(3)], any::<bool>())) {
            prop_assert!((1..=3).contains(&pair.0));
            let _: bool = pair.1;
        }

        #[test]
        fn early_ok_return_works(n in 0usize..10) {
            if n > 100 {
                return Ok(());
            }
            prop_assert_eq!(n.min(9), n);
        }
    }

    #[test]
    fn seeds_differ_per_test() {
        assert_ne!(
            crate::test_runner::seed_for("a::b"),
            crate::test_runner::seed_for("a::c")
        );
    }

    #[test]
    fn prop_assert_produces_err_not_panic() {
        let body = |n: usize| -> Result<(), TestCaseError> {
            prop_assert!(n > 100, "n was {}", n);
            Ok(())
        };
        assert!(body(5).is_err());
        assert!(body(101).is_ok());
    }
}
