//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in environments without access to crates.io, so the
//! small API subset it uses — [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`] — is provided here,
//! backed by SplitMix64. Seeded streams are deterministic and portable but
//! intentionally **not** bit-compatible with the real `rand` crate; nothing
//! in this workspace depends on the exact stream, only on seeded
//! reproducibility within one build.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A uniform f64 in `[0, 1)` from the top 53 bits of one word.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (mirroring the real crate's `Rng: RngCore` split).
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                self.start + (unit_f64(rng) as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): tiny, fast, and passes
            // BigCrush — ample for test corpora and synthetic datasets.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // One warm-up step decorrelates small consecutive seeds.
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: usize = (0..64)
            .filter(|_| {
                StdRng::seed_from_u64(9).gen_range(0u64..u64::MAX) == c.gen_range(0u64..u64::MAX)
            })
            .count();
        assert!(same < 4, "different seeds should diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..2000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(b'a'..=b'e');
            assert!((b'a'..=b'e').contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn all_values_of_small_ranges_are_hit() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&heads), "got {heads}");
        assert!(!rng.gen_bool(0.0));
        assert!(
            rng.gen_bool(1.0),
            "unit_f64 is in [0, 1), so p = 1.0 always wins"
        );
    }
}
