//! The serving wrapper: a checkpointed index and its background writer.
//!
//! [`CheckpointedIndex`] owns an [`OnlineIndex`] behind a read/write
//! lock, logs every mutation as a [`DeltaOp`], and drains the log to the
//! next file in the base snapshot's delta chain on [`checkpoint`]. It
//! implements [`Queryable`], so it slots directly into anything that
//! serves one — `passjoin-serve`'s `Server::run` takes it as-is.
//!
//! [`Checkpointer`] is the background half: a thread that checkpoints on
//! an interval and once more on shutdown (drain-safe — stopping it never
//! loses an already-applied mutation; at worst a crash loses the ops
//! since the last interval, which is the checkpointing contract).
//!
//! # Consistency
//!
//! Mutations hold the op-log lock *across* the index write and the log
//! append, so the log order always equals the index's epoch order and
//! `end_epoch = base_epoch + n_ops` holds for every drained batch.
//! Queries take only the index read lock and never block on the log.
//!
//! [`checkpoint`]: CheckpointedIndex::checkpoint

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard};
use std::time::{Duration, Instant};

use passjoin::sink::MatchSink;
use passjoin_obs::{Counter, Gauge, Histogram, Registry};
use passjoin_online::{
    EngineObs, ExecSource, KeyBackend, LoadMode, Match, OnlineIndex, OnlineStats, QueryOutcome,
    Queryable, SearchRequest, SearchResponse,
};
use passjoin_persist::{segdirect, DeltaMeta, DeltaOp, PersistError, SnapshotFile};
use sj_common::StringId;

use crate::delta::{
    apply_delta, delta_path, find_chain, read_delta_file, replay_state, write_delta,
};
use crate::mmap::open_bytes;

/// The store's metric bundle, registered under `passjoin_store_*` so a
/// serving process's one registry scrape covers engine, server, and
/// storage.
///
/// | metric | kind | meaning |
/// |---|---|---|
/// | `passjoin_store_checkpoints_total` | counter | delta files written |
/// | `passjoin_store_checkpoint_failures_total` | counter | checkpoint attempts that failed |
/// | `passjoin_store_checkpoint_ops_total` | counter | mutations persisted into delta files |
/// | `passjoin_store_checkpoint_bytes_total` | counter | delta file bytes written |
/// | `passjoin_store_checkpoint_write_ns` | histogram | per-checkpoint write time |
/// | `passjoin_store_pending_ops` | gauge | mutations logged but not yet checkpointed |
/// | `passjoin_store_chain_length` | gauge | delta files in the chain |
/// | `passjoin_store_replayed_ops_total` | counter | chain ops replayed at open |
/// | `passjoin_store_open_ns` | histogram | total open time (load + chain replay) |
/// | `passjoin_store_verify_failures_total` | counter | background integrity checks that failed |
#[derive(Debug, Clone)]
pub struct StoreObs {
    /// Delta files written.
    pub checkpoints_total: Counter,
    /// Checkpoint attempts that failed (the pending log is retained).
    pub checkpoint_failures_total: Counter,
    /// Mutations persisted into delta files.
    pub checkpoint_ops_total: Counter,
    /// Delta file bytes written.
    pub checkpoint_bytes_total: Counter,
    /// Per-checkpoint write time.
    pub checkpoint_write_ns: Histogram,
    /// Mutations logged but not yet checkpointed.
    pub pending_ops: Gauge,
    /// Delta files in the chain (replayed at open + written since).
    pub chain_length: Gauge,
    /// Chain ops replayed at open.
    pub replayed_ops_total: Counter,
    /// Total open time: base load plus chain replay.
    pub open_ns: Histogram,
    /// Background integrity checks that failed (instant opens).
    pub verify_failures_total: Counter,
}

impl StoreObs {
    /// Registers (or re-attaches to) the store metrics in `registry`.
    pub fn register(registry: &Registry) -> Self {
        Self {
            checkpoints_total: registry.counter("passjoin_store_checkpoints_total"),
            checkpoint_failures_total: registry.counter("passjoin_store_checkpoint_failures_total"),
            checkpoint_ops_total: registry.counter("passjoin_store_checkpoint_ops_total"),
            checkpoint_bytes_total: registry.counter("passjoin_store_checkpoint_bytes_total"),
            checkpoint_write_ns: registry.histogram("passjoin_store_checkpoint_write_ns"),
            pending_ops: registry.gauge("passjoin_store_pending_ops"),
            chain_length: registry.gauge("passjoin_store_chain_length"),
            replayed_ops_total: registry.counter("passjoin_store_replayed_ops_total"),
            open_ns: registry.histogram("passjoin_store_open_ns"),
            verify_failures_total: registry.counter("passjoin_store_verify_failures_total"),
        }
    }
}

/// How [`CheckpointedIndex::open`] loads the base snapshot.
#[derive(Debug, Clone, Default)]
pub struct OpenOptions {
    /// Map the base snapshot instead of reading it (`mmap(2)`; falls
    /// back to a read where mapping is unavailable).
    pub mmap: bool,
    /// Instant restart: defer per-section CRC validation and the deep
    /// structural scan of the direct postings to a background thread,
    /// so open cost is O(sections), not O(bytes). Queries are served
    /// immediately from the shallow-validated (bounds-checked) view;
    /// see [`CheckpointedIndex::verification`] for the caveat.
    pub instant: bool,
    /// Force the legacy rebuild load path (hash maps replayed from the
    /// posting stream) instead of the v3 direct appendix. Mostly for
    /// differential testing; v2 snapshots take this path automatically.
    pub rebuild: bool,
    /// Anchor the delta chain at this path instead of the base snapshot
    /// (`<anchor>.delta-1`, …) — for read-only snapshot locations, or to
    /// keep checkpoints on faster storage. Discovery at open follows the
    /// same anchor.
    pub checkpoint_base: Option<PathBuf>,
    /// Register store + engine metrics into this registry.
    pub registry: Option<Arc<Registry>>,
}

impl OpenOptions {
    /// Default options: buffered read, eager validation, direct load.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets [`OpenOptions::mmap`].
    pub fn mmap(mut self, yes: bool) -> Self {
        self.mmap = yes;
        self
    }

    /// Sets [`OpenOptions::instant`].
    pub fn instant(mut self, yes: bool) -> Self {
        self.instant = yes;
        self
    }

    /// Sets [`OpenOptions::rebuild`].
    pub fn rebuild(mut self, yes: bool) -> Self {
        self.rebuild = yes;
        self
    }

    /// Sets [`OpenOptions::checkpoint_base`].
    pub fn checkpoint_base(mut self, anchor: impl Into<PathBuf>) -> Self {
        self.checkpoint_base = Some(anchor.into());
        self
    }

    /// Sets [`OpenOptions::registry`].
    pub fn registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }
}

/// Replay contract for the *next* delta file, plus the not-yet-drained
/// op log. Guarded by one mutex; see the module docs for the lock order.
struct LogState {
    pending: Vec<DeltaOp>,
    base_epoch: u64,
    base_universe: u64,
    next_k: u32,
}

/// Result of the background integrity check an instant open schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyState {
    /// Still running (or never scheduled — eager opens are born `Ok`).
    Pending,
    /// Every section CRC and the deep structural scan passed.
    Ok,
    /// The file failed validation; `what` is the failing invariant.
    Failed {
        /// Display form of the underlying [`PersistError`].
        what: String,
    },
}

/// A serving index with durability: the loaded base snapshot plus an
/// in-memory mutation log, drained to delta checkpoint files. See the
/// module docs for the locking and consistency story.
pub struct CheckpointedIndex {
    index: RwLock<OnlineIndex>,
    log: Mutex<LogState>,
    base: PathBuf,
    obs: Option<StoreObs>,
    verify: Arc<Mutex<VerifyState>>,
}

impl CheckpointedIndex {
    /// Opens `base` and replays its delta chain, recovering exactly the
    /// state of the last completed checkpoint.
    ///
    /// The base loads via the v3 direct appendix (no posting replay)
    /// unless [`OpenOptions::rebuild`] asks otherwise; a v2 snapshot
    /// without the appendix falls back to the rebuild path. With
    /// [`OpenOptions::instant`], CRC and deep validation run on a
    /// background thread and open returns as soon as the metadata
    /// sections parse.
    pub fn open(base: impl AsRef<Path>, options: OpenOptions) -> Result<Self, PersistError> {
        let base = base.as_ref().to_path_buf();
        let anchor = options
            .checkpoint_base
            .clone()
            .unwrap_or_else(|| base.clone());
        let start = Instant::now();
        let store_obs = options.registry.as_ref().map(|r| StoreObs::register(r));
        let engine_obs = options
            .registry
            .as_ref()
            .map(|r| Arc::new(EngineObs::with_registry(Arc::clone(r))));

        let (buf, _mapped) = open_bytes(&base, options.mmap)?;
        let file = if options.instant {
            SnapshotFile::parse_lazy(buf)?
        } else {
            SnapshotFile::parse(buf)?
        };
        let mode = if options.rebuild || !segdirect::has_direct_sections(&file) {
            LoadMode::Rebuild
        } else {
            LoadMode::Direct {
                deep_validate: !options.instant,
            }
        };
        let mut index = match &engine_obs {
            Some(obs) => OnlineIndex::from_snapshot_file_with(&file, mode, Arc::clone(obs))?,
            None => OnlineIndex::from_snapshot_file(&file, mode)?,
        };

        let verify = Arc::new(Mutex::new(
            if options.instant && mode != LoadMode::Rebuild {
                VerifyState::Pending
            } else {
                VerifyState::Ok
            },
        ));
        if matches!(*lock(&verify), VerifyState::Pending) {
            // The deep scan needs the *base* universe (chain replay
            // grows the table afterwards).
            let (_, base_universe) = replay_state(&index);
            spawn_verifier(
                file,
                index.tau_max(),
                base_universe as usize,
                Arc::clone(&verify),
                store_obs.clone(),
            );
        }

        let chain = find_chain(&anchor);
        let mut replayed = 0u64;
        for path in &chain {
            let (meta, ops) = read_delta_file(path)?;
            replayed += ops.len() as u64;
            apply_delta(&mut index, &meta, &ops)?;
        }

        let (base_epoch, base_universe) = replay_state(&index);
        if let Some(obs) = &store_obs {
            obs.chain_length.set(chain.len() as i64);
            obs.replayed_ops_total.inc(replayed);
            obs.open_ns.observe(start.elapsed().as_nanos() as u64);
            obs.pending_ops.set(0);
        }
        Ok(Self {
            index: RwLock::new(index),
            log: Mutex::new(LogState {
                pending: Vec::new(),
                base_epoch,
                base_universe,
                next_k: chain.len() as u32 + 1,
            }),
            base: anchor,
            obs: store_obs,
            verify,
        })
    }

    /// The path the delta chain hangs off: the base snapshot, unless
    /// [`OpenOptions::checkpoint_base`] re-anchored it.
    pub fn base_path(&self) -> &Path {
        &self.base
    }

    /// The store's metric handles, when a registry was attached.
    pub fn obs(&self) -> Option<&StoreObs> {
        self.obs.as_ref()
    }

    /// The state of the background integrity check. Eager opens are
    /// `Ok` from construction. An instant open serves queries while the
    /// check runs: the shallow-validated view is bounds-checked (reads
    /// cannot go out of range), but until the check reports `Ok` a
    /// corrupted-yet-CRC-consistent file could still return wrong
    /// results or panic the query thread — callers that cannot accept
    /// that window should poll this before going live, or open eagerly.
    pub fn verification(&self) -> VerifyState {
        lock(&self.verify).clone()
    }

    /// Blocks until the background integrity check finishes, returning
    /// the terminal state (`Ok` or `Failed`).
    pub fn wait_for_verification(&self) -> VerifyState {
        loop {
            let state = self.verification();
            if state != VerifyState::Pending {
                return state;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Inserts a string, logging it for the next checkpoint. Same id
    /// contract as [`OnlineIndex::insert`].
    pub fn insert(&self, s: &[u8]) -> StringId {
        let mut log = lock_log(&self.log);
        let id = write_lock(&self.index).insert(s);
        log.pending.push(DeltaOp::Insert {
            id,
            bytes: s.to_vec(),
        });
        self.note_pending(log.pending.len());
        id
    }

    /// Removes a string by id, logging an actual removal for the next
    /// checkpoint. Same contract as [`OnlineIndex::remove`].
    pub fn remove(&self, id: StringId) -> bool {
        let mut log = lock_log(&self.log);
        let removed = write_lock(&self.index).remove(id);
        if removed {
            log.pending.push(DeltaOp::Remove { id });
            self.note_pending(log.pending.len());
        }
        removed
    }

    /// Drains the pending op log to the next delta file in the chain.
    /// Returns the written path, or `None` when there was nothing to
    /// persist. On error the log is retained, so a later attempt (or
    /// the shutdown drain) still covers the same ops.
    pub fn checkpoint(&self) -> Result<Option<PathBuf>, PersistError> {
        let mut log = lock_log(&self.log);
        if log.pending.is_empty() {
            return Ok(None);
        }
        let start = Instant::now();
        let inserts = log
            .pending
            .iter()
            .filter(|op| matches!(op, DeltaOp::Insert { .. }))
            .count() as u64;
        let meta = DeltaMeta {
            tau_max: read_lock(&self.index).tau_max() as u64,
            base_epoch: log.base_epoch,
            end_epoch: log.base_epoch + log.pending.len() as u64,
            base_universe: log.base_universe,
            end_universe: log.base_universe + inserts,
        };
        let path = delta_path(&self.base, log.next_k);
        match write_delta(&path, &meta, &log.pending) {
            Ok(bytes) => {
                if let Some(obs) = &self.obs {
                    obs.checkpoints_total.inc(1);
                    obs.checkpoint_ops_total.inc(log.pending.len() as u64);
                    obs.checkpoint_bytes_total.inc(bytes);
                    obs.checkpoint_write_ns
                        .observe(start.elapsed().as_nanos() as u64);
                    obs.chain_length.set(log.next_k as i64);
                }
                log.base_epoch = meta.end_epoch;
                log.base_universe = meta.end_universe;
                log.next_k += 1;
                log.pending.clear();
                self.note_pending(0);
                Ok(Some(path))
            }
            Err(e) => {
                if let Some(obs) = &self.obs {
                    obs.checkpoint_failures_total.inc(1);
                }
                Err(e)
            }
        }
    }

    /// Writes a *full* snapshot of the current state to `path` — the
    /// compaction primitive: a full save starts a fresh, empty chain at
    /// the new path (this index keeps appending to its own chain).
    /// Mutations are blocked for the duration.
    pub fn save_full(&self, path: &Path) -> Result<u64, PersistError> {
        read_lock(&self.index).save(path)
    }

    /// Runs `f` against the live index under the read lock, for
    /// inspection APIs [`Queryable`] does not carry (`get`,
    /// `cache_stats`, …). The guard cannot escape; return owned data.
    pub fn with_index<R>(&self, f: impl FnOnce(&OnlineIndex) -> R) -> R {
        f(&read_lock(&self.index))
    }

    /// Resizes the inner index's query cache (a non-logged maintenance
    /// knob; it never touches the corpus, so the checkpoint log is
    /// unaffected).
    pub fn set_cache_capacity(&self, capacity: usize) {
        write_lock(&self.index).set_cache_capacity(capacity);
    }

    /// Mutations logged since the last checkpoint.
    pub fn pending_ops(&self) -> usize {
        lock_log(&self.log).pending.len()
    }

    /// Index statistics of the current (post-replay, post-mutation)
    /// state.
    pub fn stats(&self) -> OnlineStats {
        read_lock(&self.index).stats()
    }

    fn note_pending(&self, n: usize) {
        if let Some(obs) = &self.obs {
            obs.pending_ops.set(n as i64);
        }
    }

    fn read(&self) -> RwLockReadGuard<'_, OnlineIndex> {
        read_lock(&self.index)
    }
}

/// A composite [`Queryable`]: no single borrowable inner state (the
/// index lives behind the lock), so `exec_source` is `None` and every
/// provided method delegates through a read guard — the same pattern as
/// the shard router.
impl Queryable for CheckpointedIndex {
    fn exec_source(&self) -> Option<ExecSource<'_>> {
        None
    }

    fn search(&self, req: &SearchRequest) -> QueryOutcome {
        self.read().search(req)
    }

    fn search_batch(&self, reqs: &[SearchRequest]) -> SearchResponse {
        self.read().search_batch(reqs)
    }

    fn search_streaming(&self, req: &SearchRequest, sink: &mut dyn MatchSink) -> QueryOutcome {
        self.read().search_streaming(req, sink)
    }

    fn search_batch_streaming(
        &self,
        reqs: &[SearchRequest],
        sinks: &mut [&mut (dyn MatchSink + Send)],
    ) -> SearchResponse {
        self.read().search_batch_streaming(reqs, sinks)
    }

    fn matches(&self, query: &[u8], tau: usize) -> Vec<Match> {
        self.read().matches(query, tau)
    }

    fn tau_max(&self) -> usize {
        self.read().tau_max()
    }

    fn key_backend(&self) -> KeyBackend {
        self.read().key_backend()
    }

    fn len(&self) -> usize {
        self.read().len()
    }

    fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    fn epoch(&self) -> u64 {
        self.read().epoch()
    }
}

impl std::fmt::Debug for CheckpointedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointedIndex")
            .field("base", &self.base)
            .finish_non_exhaustive()
    }
}

/// Runs the full integrity pass an instant open deferred: every section
/// CRC, then the deep structural scan of the direct postings, off the
/// serving path.
fn spawn_verifier(
    file: SnapshotFile,
    tau_max: usize,
    universe: usize,
    slot: Arc<Mutex<VerifyState>>,
    obs: Option<StoreObs>,
) {
    let thread_slot = Arc::clone(&slot);
    let run = move || {
        let outcome = file
            .verify_all()
            .and_then(|()| segdirect::decode_direct(&file, tau_max, Some(universe)).map(|_| ()));
        let state = match outcome {
            Ok(()) => VerifyState::Ok,
            Err(e) => {
                if let Some(obs) = &obs {
                    obs.verify_failures_total.inc(1);
                }
                VerifyState::Failed {
                    what: e.to_string(),
                }
            }
        };
        *lock(&thread_slot) = state;
    };
    if std::thread::Builder::new()
        .name("passjoin-store-verify".into())
        .spawn(run)
        .is_err()
    {
        // No thread available: fail safe by reporting unverified-failed
        // rather than claiming Ok for bytes nobody checked.
        *lock(&slot) = VerifyState::Failed {
            what: "could not spawn the verification thread".into(),
        };
    }
}

/// The background checkpoint thread: drains the op log every `interval`
/// and once more on [`stop`](Checkpointer::stop) (or drop), so shutdown
/// never loses an applied mutation. Write errors are counted in
/// [`StoreObs::checkpoint_failures_total`] and kept in
/// [`last_error`](Checkpointer::last_error); the pending log survives a
/// failed attempt, so the next tick retries the same ops.
pub struct Checkpointer {
    stop: Arc<AtomicBool>,
    last_error: Arc<Mutex<Option<String>>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Checkpointer {
    /// Starts checkpointing `index` every `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero (the thread would spin) or the
    /// thread cannot be spawned.
    pub fn start(index: Arc<CheckpointedIndex>, interval: Duration) -> Self {
        assert!(!interval.is_zero(), "checkpoint interval must be non-zero");
        let stop = Arc::new(AtomicBool::new(false));
        let last_error = Arc::new(Mutex::new(None));
        let handle = {
            let stop = Arc::clone(&stop);
            let last_error = Arc::clone(&last_error);
            std::thread::Builder::new()
                .name("passjoin-store-checkpoint".into())
                .spawn(move || {
                    // Poll in short steps so stop latency stays bounded
                    // regardless of the interval.
                    let step = interval.min(Duration::from_millis(50));
                    let mut elapsed = Duration::ZERO;
                    loop {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::sleep(step);
                        elapsed += step;
                        if elapsed >= interval {
                            elapsed = Duration::ZERO;
                            note(&last_error, index.checkpoint());
                        }
                    }
                    // Drain: persist everything applied before stop.
                    note(&last_error, index.checkpoint());
                })
                .expect("spawning the checkpoint thread")
        };
        Self {
            stop,
            last_error,
            handle: Some(handle),
        }
    }

    /// Stops the thread after a final drain checkpoint and waits for it.
    /// Returns the drain's error, if the final checkpoint failed —
    /// `Some` means applied mutations are still only in memory.
    pub fn stop(mut self) -> Option<String> {
        self.shutdown();
        lock(&self.last_error).clone()
    }

    /// The display form of the most recent checkpoint error, if any
    /// attempt has failed since the last success.
    pub fn last_error(&self) -> Option<String> {
        lock(&self.last_error).clone()
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Checkpointer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Checkpointer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpointer").finish_non_exhaustive()
    }
}

fn note(slot: &Mutex<Option<String>>, outcome: Result<Option<PathBuf>, PersistError>) {
    match outcome {
        Ok(_) => *lock(slot) = None,
        Err(e) => *lock(slot) = Some(e.to_string()),
    }
}

// Lock helpers: a poisoned lock means a panic already happened on
// another thread; the data these guards protect stays structurally
// valid (every critical section restores invariants before unwinding
// points), so serving continues rather than cascading the panic.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn lock_log(m: &Mutex<LogState>) -> MutexGuard<'_, LogState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn read_lock(l: &RwLock<OnlineIndex>) -> RwLockReadGuard<'_, OnlineIndex> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock(l: &RwLock<OnlineIndex>) -> std::sync::RwLockWriteGuard<'_, OnlineIndex> {
    l.write().unwrap_or_else(|e| e.into_inner())
}
