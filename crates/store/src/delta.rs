//! Delta-checkpoint chains: placement, discovery, and replay.
//!
//! The byte-level codec lives in `passjoin_persist::delta`; this module
//! owns everything above it — where a chain lives on disk, how a loader
//! finds it, and how a log replays onto a loaded base index without ever
//! silently diverging from the state the log was recorded against.
//!
//! # Chain layout
//!
//! A base snapshot `index.snap` owns the chain `index.snap.delta-1`,
//! `index.snap.delta-2`, … — densely numbered from 1. Discovery
//! ([`find_chain`]) walks the numbers until the first gap, so deleting a
//! chain means deleting a *suffix*; a gap orphans everything after it,
//! which is exactly the crash-safe property checkpoint writers need
//! (`SnapshotWriter::save` renames into place, so delta `k` exists only
//! complete, and only after `k − 1`).
//!
//! # Replay contract
//!
//! Each delta records the epoch and string-table size it starts from and
//! ends at, and each logged insert records the id it was assigned.
//! [`apply_delta`] re-checks all of it against the live index: a chain
//! from a different base (or applied out of order) is a typed
//! [`PersistError::Corrupt`], never a silently wrong index.

use std::path::{Path, PathBuf};

use passjoin_online::OnlineIndex;
use passjoin_persist::delta::{delta_writer, is_delta, read_delta};
use passjoin_persist::{DeltaMeta, DeltaOp, PersistError, SnapshotFile};

/// The path of the `k`-th delta in `base`'s chain: `<base>.delta-<k>`.
/// `k` is 1-based; `k = 0` is the base snapshot itself and has no delta
/// path.
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn delta_path(base: &Path, k: u32) -> PathBuf {
    assert!(k > 0, "delta numbering starts at 1");
    let mut name = base
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(format!(".delta-{k}"));
    base.with_file_name(name)
}

/// The existing chain for `base`: `[<base>.delta-1, …]` up to the first
/// missing number. Files past a gap are orphans and are ignored.
pub fn find_chain(base: &Path) -> Vec<PathBuf> {
    let mut chain = Vec::new();
    for k in 1u32.. {
        let path = delta_path(base, k);
        if !path.exists() {
            break;
        }
        chain.push(path);
    }
    chain
}

/// Writes one delta checkpoint to `path` with the container's
/// crash-atomic temp-file-and-rename save. Returns the file size.
pub fn write_delta(path: &Path, meta: &DeltaMeta, ops: &[DeltaOp]) -> Result<u64, PersistError> {
    delta_writer(meta, ops).save(path)
}

/// Opens and fully validates one delta file: container framing, CRCs,
/// and the codec's structural checks. A full snapshot at `path` is
/// rejected as [`PersistError::Corrupt`] (the two kinds share framing
/// but never sections).
pub fn read_delta_file(path: &Path) -> Result<(DeltaMeta, Vec<DeltaOp>), PersistError> {
    let file = SnapshotFile::open(path)?;
    if !is_delta(&file) {
        return Err(PersistError::Corrupt {
            context: "expected a delta checkpoint, found a full snapshot",
        });
    }
    read_delta(&file)
}

/// The replay-contract view of a live index: `(epoch, universe)`, where
/// universe is the string-table size (live strings plus tombstones) —
/// the id the next insert will be assigned.
pub fn replay_state(index: &OnlineIndex) -> (u64, u64) {
    let stats = index.stats();
    (stats.epoch, (stats.live + stats.tombstones) as u64)
}

/// Replays one validated delta onto `index`, verifying the contract at
/// every step: the meta must match the index's τ_max, epoch, and
/// universe going in; every replayed insert must be assigned exactly the
/// recorded id; every remove must remove a live string; and the index
/// must land on the recorded end epoch.
///
/// # Errors
///
/// [`PersistError::Corrupt`] on any mismatch. The index may then hold a
/// partially applied log — discard it; replay is for freshly loaded
/// bases, not live serving state.
pub fn apply_delta(
    index: &mut OnlineIndex,
    meta: &DeltaMeta,
    ops: &[DeltaOp],
) -> Result<(), PersistError> {
    let corrupt = |context: &'static str| PersistError::Corrupt { context };
    if meta.tau_max != index.tau_max() as u64 {
        return Err(corrupt("delta tau_max does not match the base index"));
    }
    let (epoch, universe) = replay_state(index);
    if meta.base_epoch != epoch {
        return Err(corrupt("delta base epoch does not match the base index"));
    }
    if meta.base_universe != universe {
        return Err(corrupt("delta base universe does not match the base index"));
    }
    for op in ops {
        match op {
            DeltaOp::Insert { id, bytes } => {
                if index.insert(bytes) != *id {
                    return Err(corrupt("delta replay assigned a different id"));
                }
            }
            DeltaOp::Remove { id } => {
                if !index.remove(*id) {
                    return Err(corrupt("delta replay removed an already-dead id"));
                }
            }
        }
    }
    if index.epoch() != meta.end_epoch {
        return Err(corrupt("delta replay did not land on the recorded epoch"));
    }
    Ok(())
}

/// Loads `base` with the default (fully validated, rebuild) load path
/// and replays its whole chain. The simple entry for tools that want
/// "the state as of the last checkpoint" without the serving wrapper —
/// the CLI's auto chain detection uses it. Returns the index and the
/// number of chain files replayed.
pub fn load_chain(base: &Path) -> Result<(OnlineIndex, usize), PersistError> {
    let mut index = OnlineIndex::load(base)?;
    let chain = find_chain(base);
    for path in &chain {
        let (meta, ops) = read_delta_file(path)?;
        apply_delta(&mut index, &meta, &ops)?;
    }
    Ok((index, chain.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_paths_extend_the_base_name() {
        let base = Path::new("/tmp/dir/index.snap");
        assert_eq!(
            delta_path(base, 1),
            Path::new("/tmp/dir/index.snap.delta-1")
        );
        assert_eq!(
            delta_path(base, 12),
            Path::new("/tmp/dir/index.snap.delta-12")
        );
    }

    #[test]
    #[should_panic(expected = "starts at 1")]
    fn delta_zero_is_rejected() {
        let _ = delta_path(Path::new("x.snap"), 0);
    }

    #[test]
    fn chain_discovery_stops_at_the_first_gap() {
        let dir = std::env::temp_dir().join(format!("passjoin-store-chain-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("index.snap");
        for k in [1u32, 2, 4] {
            std::fs::write(delta_path(&base, k), b"x").unwrap();
        }
        let chain = find_chain(&base);
        assert_eq!(chain, vec![delta_path(&base, 1), delta_path(&base, 2)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
