//! **passjoin-store** — instant-restart storage for Pass-Join serving
//! indices.
//!
//! `passjoin-persist` owns the snapshot *bytes* and `passjoin-online`
//! owns the load *semantics*; this crate owns **durability and
//! recovery** — the pieces that make a serving index restart in O(1)
//! rather than O(index):
//!
//! * [`mmap`] — a std-only `mmap(2)` shim behind the same
//!   [`SharedBytes`](sj_common::SharedBytes) handle the string arena
//!   already uses, so snapshot loads become lazy and page-granular
//!   (with a `fs::read` fallback everywhere mapping is unavailable);
//! * [`delta`] — delta-checkpoint *chains*: `<base>.delta-1`, `-2`, …
//!   placement, gap-safe discovery, and verified replay of the
//!   insert/remove log onto a loaded base ([`load_chain`] is the
//!   one-call recovery path);
//! * [`checkpoint`] — the serving wrapper: [`CheckpointedIndex`]
//!   queries like any [`Queryable`](passjoin_online::Queryable), logs
//!   every mutation, and drains the log to the next delta file;
//!   [`Checkpointer`] does so periodically on a background thread and
//!   once more at shutdown, with `passjoin_store_*` metrics.
//!
//! Put together with format v3's direct postings appendix (probed
//! straight out of the loaded buffer, no hash-map rebuild) the restart
//! path is: map the base snapshot, parse the section table, replay the
//! delta chain — and serve, with the bulk of the file faulted in lazily
//! as queries touch it.
//!
//! ```no_run
//! use std::sync::Arc;
//! use passjoin_online::Queryable;
//! use passjoin_store::{CheckpointedIndex, Checkpointer, OpenOptions};
//!
//! let index = Arc::new(CheckpointedIndex::open(
//!     "index.snap",
//!     OpenOptions::new().mmap(true).instant(true),
//! )?);
//! let writer = Checkpointer::start(Arc::clone(&index), std::time::Duration::from_secs(5));
//!
//! index.insert(b"jim gray");
//! assert!(!index.matches(b"jim grey", 1).is_empty());
//!
//! writer.stop(); // final drain checkpoint; nothing applied is lost
//! # Ok::<(), passjoin_persist::PersistError>(())
//! ```

pub mod checkpoint;
pub mod delta;
pub mod mmap;

use std::path::Path;

use passjoin_online::{LoadMode, OnlineIndex};
use passjoin_persist::{PersistError, SnapshotFile};

pub use checkpoint::{CheckpointedIndex, Checkpointer, OpenOptions, StoreObs, VerifyState};
pub use delta::{delta_path, find_chain, load_chain};
pub use mmap::{map_file, open_bytes, read_file};

/// Loads a snapshot through the instant-restart path without the
/// serving wrapper: mmap (where available), lazy CRC validation,
/// direct postings, no chain replay. The caller owns the trade-off
/// documented on [`CheckpointedIndex::verification`]: integrity checks
/// beyond the header and metadata sections have not run yet.
///
/// Falls back to the rebuild path for pre-v3 snapshots (no direct
/// appendix).
pub fn open_instant(path: impl AsRef<Path>) -> Result<OnlineIndex, PersistError> {
    let (buf, _) = open_bytes(path.as_ref(), true)?;
    let file = SnapshotFile::parse_lazy(buf)?;
    let mode = if passjoin_persist::segdirect::has_direct_sections(&file) {
        LoadMode::Direct {
            deep_validate: false,
        }
    } else {
        LoadMode::Rebuild
    };
    OnlineIndex::from_snapshot_file(&file, mode)
}

/// Loads a snapshot via mmap with *full* eager validation — the safe
/// sibling of [`open_instant`] when restart latency can afford the
/// checks: all CRCs and, on the direct path, the deep structural scan.
pub fn open_mapped(path: impl AsRef<Path>) -> Result<OnlineIndex, PersistError> {
    let (buf, _) = open_bytes(path.as_ref(), true)?;
    let file = SnapshotFile::parse(buf)?;
    let mode = if passjoin_persist::segdirect::has_direct_sections(&file) {
        LoadMode::Direct {
            deep_validate: true,
        }
    } else {
        LoadMode::Rebuild
    };
    OnlineIndex::from_snapshot_file(&file, mode)
}
