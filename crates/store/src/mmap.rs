//! Memory-mapped snapshot buffers behind the engine's [`SharedBytes`]
//! handle.
//!
//! `OnlineIndex::load` reads the whole snapshot with `fs::read`, so load
//! cost is linear in file size before a single section is decoded. This
//! module maps the file instead: [`map_file`] wraps a read-only, private
//! `mmap(2)` of the snapshot in a [`SharedBytes`], so the loader's
//! zero-copy views (string arena, direct postings) become *page-granular
//! and lazy* — the kernel faults pages in as queries touch them, and a
//! restart touches only the header, section table, and metadata pages.
//!
//! The build environment has no `libc` crate, so the two syscalls are
//! declared directly (`extern "C"`); everything else is std. On
//! non-Unix targets (and for callers that ask for it) [`read_file`] is
//! the portable fallback with identical semantics minus the laziness.
//!
//! # Caveats
//!
//! * The mapping is `MAP_PRIVATE` and read-only: mutating the snapshot
//!   file *in place* while a process has it mapped is undefined from the
//!   reader's point of view (the engine's own savers never do — they
//!   write a temp file and rename). Truncating a mapped file can raise
//!   `SIGBUS` on access; replace snapshots atomically, never in place.
//! * No torn-page or durability claims are made for the mapping itself:
//!   integrity still comes from the container's per-section CRC32
//!   validation, which runs on the mapped bytes exactly as it does on a
//!   heap buffer.

use std::fs::File;
use std::io;
use std::path::Path;
use std::sync::Arc;

use sj_common::{ByteStore, SharedBytes};

/// Reads the whole file into an owned buffer — the portable load path
/// (and the only one off Unix). Byte-for-byte equivalent to [`map_file`].
pub fn read_file(path: &Path) -> io::Result<SharedBytes> {
    Ok(std::fs::read(path)?.into())
}

/// Opens `path` as a [`SharedBytes`], preferring an mmap when asked for
/// and available; `fs::read` otherwise. Returns the buffer and whether
/// it is actually memory-mapped.
pub fn open_bytes(path: &Path, prefer_mmap: bool) -> io::Result<(SharedBytes, bool)> {
    if prefer_mmap {
        if let Some(mapped) = map_file(path)? {
            return Ok((mapped, true));
        }
    }
    Ok((read_file(path)?, false))
}

/// Maps `path` read-only and returns it as a [`SharedBytes`], or `None`
/// where mapping is unsupported (non-Unix targets) — callers fall back
/// to [`read_file`]. An empty file yields an empty heap buffer (a
/// zero-length `mmap` is an error by spec).
///
/// # Errors
///
/// Propagates `open`/`metadata` failures and the `mmap(2)` errno.
#[cfg(unix)]
pub fn map_file(path: &Path) -> io::Result<Option<SharedBytes>> {
    use std::os::unix::io::AsRawFd;

    let file = File::open(path)?;
    let len = file.metadata()?.len();
    let len = usize::try_from(len)
        .map_err(|_| io::Error::new(io::ErrorKind::OutOfMemory, "file exceeds address space"))?;
    if len == 0 {
        return Ok(Some(Vec::new().into()));
    }
    // SAFETY: a fresh read-only private mapping of `len` bytes backed by
    // an open fd; the fd may close immediately after (POSIX keeps the
    // mapping alive), and `MmapBytes::drop` unmaps exactly this range.
    let ptr = unsafe {
        sys::mmap(
            std::ptr::null_mut(),
            len,
            sys::PROT_READ,
            sys::MAP_PRIVATE,
            file.as_raw_fd(),
            0,
        )
    };
    if ptr == sys::MAP_FAILED {
        return Err(io::Error::last_os_error());
    }
    let store = MmapBytes { ptr, len };
    Ok(Some(SharedBytes::from_store(
        Arc::new(store) as Arc<dyn ByteStore>
    )))
}

/// Maps `path` read-only; always `None` on non-Unix targets (no mmap
/// shim), so [`open_bytes`] falls back to [`read_file`].
#[cfg(not(unix))]
pub fn map_file(_path: &Path) -> io::Result<Option<SharedBytes>> {
    Ok(None)
}

/// The raw syscall declarations — the subset of `libc` this shim needs,
/// with the constants pinned to their POSIX-universal values.
#[cfg(unix)]
mod sys {
    use std::ffi::c_void;
    use std::os::raw::c_int;

    /// `PROT_READ`: pages may be read.
    pub const PROT_READ: c_int = 1;
    /// `MAP_PRIVATE`: copy-on-write, not shared with other mappers.
    pub const MAP_PRIVATE: c_int = 2;
    /// `mmap`'s error return, `(void *) -1`.
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }
}

/// One live read-only mapping, unmapped on drop. Private to the module:
/// callers only ever see the type-erased [`SharedBytes`].
#[cfg(unix)]
struct MmapBytes {
    ptr: *mut std::ffi::c_void,
    len: usize,
}

// SAFETY: the mapping is PROT_READ and never handed out mutably, so
// concurrent reads from any thread are fine; the raw pointer is owned
// exclusively by this struct until drop.
#[cfg(unix)]
unsafe impl Send for MmapBytes {}
#[cfg(unix)]
unsafe impl Sync for MmapBytes {}

#[cfg(unix)]
impl ByteStore for MmapBytes {
    fn as_bytes(&self) -> &[u8] {
        // SAFETY: `ptr` is a live mapping of exactly `len` readable
        // bytes, valid until `drop` unmaps it — and the returned slice
        // cannot outlive `self`.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

#[cfg(unix)]
impl Drop for MmapBytes {
    fn drop(&mut self) {
        // SAFETY: unmaps the exact range mmap returned; failure is
        // unreportable in drop and leaves only a leaked mapping.
        unsafe {
            sys::munmap(self.ptr, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("passjoin-store-mmap-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn mapped_bytes_equal_read_bytes() {
        let path = temp_path("roundtrip");
        let payload: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        std::fs::write(&path, &payload).unwrap();
        let (mapped, _) = open_bytes(&path, true).unwrap();
        let (read, was_mapped) = open_bytes(&path, false).unwrap();
        assert!(!was_mapped);
        assert_eq!(mapped.as_bytes(), read.as_bytes());
        assert_eq!(mapped.as_bytes(), &payload[..]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_an_empty_buffer() {
        let path = temp_path("empty");
        std::fs::write(&path, b"").unwrap();
        let (bytes, _) = open_bytes(&path, true).unwrap();
        assert!(bytes.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let path = temp_path("missing-never-created");
        assert!(open_bytes(&path, true).is_err());
        assert!(open_bytes(&path, false).is_err());
    }

    #[cfg(unix)]
    #[test]
    fn mapping_survives_the_closed_fd_and_unmaps_on_drop() {
        let path = temp_path("fd-close");
        std::fs::write(&path, vec![0xabu8; 1 << 16]).unwrap();
        let mapped = map_file(&path).unwrap().expect("unix maps");
        // The File handle in map_file is already closed; reads still work.
        assert!(mapped.as_bytes().iter().all(|&b| b == 0xab));
        let clone = mapped.clone();
        drop(mapped);
        assert_eq!(clone.len(), 1 << 16, "clone keeps the mapping alive");
        drop(clone); // munmap happens here; nothing observable to assert
        std::fs::remove_file(&path).unwrap();
    }
}
