//! End-to-end tests of the instant-restart subsystem: checkpoint chains,
//! crash recovery, load-mode parity, and hostile delta files.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use passjoin_obs::Registry;
use passjoin_online::{OnlineIndex, PersistError, Queryable, SearchRequest};
use passjoin_store::{
    delta_path, find_chain, load_chain, open_instant, open_mapped, CheckpointedIndex, Checkpointer,
    OpenOptions, VerifyState,
};

/// A scratch directory that cleans up after itself.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("passjoin-store-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A small deterministic corpus with plenty of near-duplicates.
fn corpus(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| format!("record-{:04}-{}", i / 3, ["alpha", "beta", "gamma"][i % 3]).into_bytes())
        .collect()
}

fn build_index(tau_max: usize, strings: &[Vec<u8>]) -> OnlineIndex {
    let mut index = OnlineIndex::new(tau_max);
    for s in strings {
        index.insert(s);
    }
    index
}

/// Queries that exercise exact hits, near misses, and absent strings.
fn probe_queries() -> Vec<Vec<u8>> {
    vec![
        b"record-0001-alpha".to_vec(),
        b"record-0001-alphq".to_vec(),
        b"record-0012-gamma".to_vec(),
        b"record-9999-omega".to_vec(),
        b"rec".to_vec(),
    ]
}

/// Asserts two queryables answer identically over the probe set at
/// every τ up to τ_max.
fn assert_equivalent(a: &dyn Queryable, b: &dyn Queryable, context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: live counts differ");
    assert_eq!(a.epoch(), b.epoch(), "{context}: epochs differ");
    assert_eq!(a.tau_max(), b.tau_max(), "{context}: tau_max differs");
    for q in probe_queries() {
        for tau in 0..=a.tau_max() {
            assert_eq!(
                a.matches(&q, tau),
                b.matches(&q, tau),
                "{context}: query {:?} tau {tau}",
                String::from_utf8_lossy(&q)
            );
        }
    }
}

/// The twin-driving mutation script: deterministic inserts and removes.
enum Op {
    Insert(&'static [u8]),
    Remove(u32),
}

const ROUND_ONE: &[Op] = &[
    Op::Insert(b"record-0100-delta"),
    Op::Insert(b"record-0100-epsilon"),
    Op::Remove(2),
    Op::Insert(b"record-0101-delta"),
    Op::Remove(5),
];

const ROUND_TWO: &[Op] = &[
    Op::Remove(60),
    Op::Insert(b"record-0102-zeta"),
    Op::Insert(b"record-0102-eta"),
    Op::Remove(0),
];

fn apply_to_twin(twin: &mut OnlineIndex, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Insert(s) => {
                twin.insert(s);
            }
            Op::Remove(id) => {
                assert!(twin.remove(*id));
            }
        }
    }
}

fn apply_to_store(store: &CheckpointedIndex, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Insert(s) => {
                store.insert(s);
            }
            Op::Remove(id) => {
                assert!(store.remove(*id));
            }
        }
    }
}

#[test]
fn checkpoint_chain_roundtrips_across_restarts() {
    let scratch = Scratch::new("chain-roundtrip");
    let base = scratch.path("index.snap");
    let mut twin = build_index(2, &corpus(60));
    twin.save(&base).unwrap();

    // First serving session: mutate, checkpoint, mutate, checkpoint.
    {
        let store = CheckpointedIndex::open(&base, OpenOptions::new()).unwrap();
        apply_to_store(&store, ROUND_ONE);
        assert_eq!(store.pending_ops(), ROUND_ONE.len());
        assert_eq!(store.checkpoint().unwrap(), Some(delta_path(&base, 1)));
        assert_eq!(store.pending_ops(), 0);
        assert!(
            store.checkpoint().unwrap().is_none(),
            "an empty log writes nothing"
        );
        apply_to_store(&store, ROUND_TWO);
        assert_eq!(store.checkpoint().unwrap(), Some(delta_path(&base, 2)));
    }
    apply_to_twin(&mut twin, ROUND_ONE);
    apply_to_twin(&mut twin, ROUND_TWO);

    assert_eq!(find_chain(&base).len(), 2);

    // Restart: every open mode recovers base + chain exactly.
    for (name, options) in [
        ("default", OpenOptions::new()),
        ("mmap", OpenOptions::new().mmap(true)),
        ("rebuild", OpenOptions::new().rebuild(true)),
        ("instant", OpenOptions::new().mmap(true).instant(true)),
    ] {
        let store = CheckpointedIndex::open(&base, options).unwrap();
        if name == "instant" {
            assert_eq!(store.wait_for_verification(), VerifyState::Ok);
        } else {
            assert_eq!(store.verification(), VerifyState::Ok);
        }
        assert_equivalent(&store, &twin, name);
    }

    // And the unwrapped recovery path agrees too.
    let (plain, replayed) = load_chain(&base).unwrap();
    assert_eq!(replayed, 2);
    assert_equivalent(&plain, &twin, "load_chain");
}

#[test]
fn a_killed_server_recovers_exactly_the_last_checkpoint() {
    let scratch = Scratch::new("crash-replay");
    let base = scratch.path("index.snap");
    let mut twin = build_index(2, &corpus(60));
    twin.save(&base).unwrap();

    // Session 1 "crashes": ROUND_ONE is checkpointed, ROUND_TWO is
    // applied in memory but never drained — `forget` skips every drop
    // (no Checkpointer shutdown drain, no flush), like a SIGKILL.
    {
        let store = CheckpointedIndex::open(&base, OpenOptions::new()).unwrap();
        apply_to_store(&store, ROUND_ONE);
        store.checkpoint().unwrap();
        apply_to_store(&store, ROUND_TWO);
        std::mem::forget(store);
    }
    apply_to_twin(&mut twin, ROUND_ONE); // ROUND_TWO is lost by design

    let recovered = CheckpointedIndex::open(&base, OpenOptions::new()).unwrap();
    assert_equivalent(&recovered, &twin, "post-crash");

    // Session 2 resumes the chain where the crash left it: its first
    // checkpoint is delta-2 and must replay cleanly on the next boot.
    apply_to_store(&recovered, ROUND_TWO);
    assert_eq!(recovered.checkpoint().unwrap(), Some(delta_path(&base, 2)));
    apply_to_twin(&mut twin, ROUND_TWO);
    let rebooted = CheckpointedIndex::open(&base, OpenOptions::new()).unwrap();
    assert_equivalent(&rebooted, &twin, "post-crash second boot");
}

#[test]
fn background_checkpointer_drains_on_stop() {
    let scratch = Scratch::new("checkpointer");
    let base = scratch.path("index.snap");
    let mut twin = build_index(1, &corpus(12));
    twin.save(&base).unwrap();

    let registry = Arc::new(Registry::new());
    let store = Arc::new(
        CheckpointedIndex::open(&base, OpenOptions::new().registry(Arc::clone(&registry))).unwrap(),
    );
    // A long interval: the drain on stop must do the work, not the timer.
    let writer = Checkpointer::start(Arc::clone(&store), Duration::from_secs(3600));
    apply_to_store(&store, ROUND_ONE);
    apply_to_twin(&mut twin, ROUND_ONE);
    assert!(writer.last_error().is_none());
    writer.stop();
    assert_eq!(store.pending_ops(), 0, "stop drains the log");
    assert_eq!(find_chain(&base).len(), 1);

    let obs = store.obs().expect("registry attached");
    assert_eq!(obs.checkpoints_total.get(), 1);
    assert_eq!(obs.checkpoint_ops_total.get(), ROUND_ONE.len() as u64);
    assert!(registry
        .render_prometheus()
        .contains("passjoin_store_checkpoints_total 1"));

    let recovered = CheckpointedIndex::open(&base, OpenOptions::new()).unwrap();
    assert_equivalent(&recovered, &twin, "after background drain");
}

#[test]
fn open_modes_agree_with_the_plain_loader() {
    let scratch = Scratch::new("mode-parity");
    let base = scratch.path("index.snap");
    let twin = build_index(2, &corpus(90));
    twin.save(&base).unwrap();

    let plain = OnlineIndex::load(&base).unwrap();
    let mapped = open_mapped(&base).unwrap();
    let instant = open_instant(&base).unwrap();
    assert_equivalent(&mapped, &plain, "open_mapped");
    assert_equivalent(&instant, &plain, "open_instant");

    // Batched queries agree too (the engine path, not just `matches`).
    let reqs: Vec<SearchRequest> = probe_queries()
        .into_iter()
        .map(|q| SearchRequest::new(q, 2))
        .collect();
    let a = plain.search_batch(&reqs);
    let b = mapped.search_batch(&reqs);
    for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
        assert_eq!(x.matches, y.matches);
        assert_eq!(x.count, y.count);
    }
}

#[test]
fn instant_open_stays_mutable_and_materializes() {
    let scratch = Scratch::new("instant-mutate");
    let base = scratch.path("index.snap");
    let mut twin = build_index(2, &corpus(90));
    twin.save(&base).unwrap();

    // The instant open serves strings lazily off the mapped span table;
    // parity must hold before any materialization…
    let mut instant = open_instant(&base).unwrap();
    assert_equivalent(&instant, &twin, "pristine instant open");

    // …and the first mutation (which materializes the table and rebuilds
    // the accounting from the spans actually decoded) must keep it in
    // lockstep with the eagerly built twin, including tombstone counts.
    apply_to_twin(&mut twin, ROUND_ONE);
    apply_to_twin(&mut instant, ROUND_ONE);
    assert_equivalent(&instant, &twin, "after materializing mutations");
    assert_eq!(instant.stats().tombstones, twin.stats().tombstones);

    // A save of the materialized state round-trips like any other.
    let resaved = scratch.path("resaved.snap");
    instant.save(&resaved).unwrap();
    let reloaded = OnlineIndex::load(&resaved).unwrap();
    assert_equivalent(&reloaded, &twin, "resaved after materialization");
}

#[test]
fn hostile_spans_read_as_tombstones_on_the_lazy_path() {
    let scratch = Scratch::new("hostile-span");
    let base = scratch.path("index.snap");
    build_index(2, &corpus(30)).save(&base).unwrap();

    // Point id 7's span far past the arena (12 bytes per span entry:
    // start u64 + len u32; section 2 is the span table). The section CRC
    // now lies — an eager load catches that, an instant open defers it.
    let pristine = std::fs::read(&base).unwrap();
    let file = passjoin_persist::SnapshotFile::parse_lazy(pristine.clone().into()).unwrap();
    let spans = file.section_range(2).unwrap();
    let mut bytes = pristine;
    let at = spans.start + 7 * 12;
    bytes[at..at + 8].copy_from_slice(&(u64::MAX - 1024).to_le_bytes());
    std::fs::write(&base, &bytes).unwrap();
    assert!(
        OnlineIndex::load(&base).is_err(),
        "eager load must reject the corrupted span section"
    );

    // Deferred validation must stay memory-safe: the hostile span reads
    // as a tombstone, so queries (whose postings still reference id 7)
    // skip it instead of slicing out of bounds.
    let mut instant = open_instant(&base).unwrap();
    for q in probe_queries() {
        let _ = instant.matches(&q, 2);
    }
    assert!(
        instant.matches(b"record-0002-beta", 0).is_empty(),
        "the hostile id must not match"
    );

    // Materialization (first mutation) walks every span: no panic, and
    // the hostile id stays dead.
    instant.insert(b"record-0030-delta");
    assert!(!instant.remove(7), "hostile span materializes as tombstone");
    assert_eq!(instant.len(), 30, "29 survivors + 1 insert");
}

#[test]
fn chains_from_a_different_base_are_rejected() {
    let scratch = Scratch::new("wrong-base");
    let base_a = scratch.path("a.snap");
    let base_b = scratch.path("b.snap");
    build_index(2, &corpus(30)).save(&base_a).unwrap();
    build_index(2, &corpus(33)).save(&base_b).unwrap();

    let store = CheckpointedIndex::open(&base_a, OpenOptions::new()).unwrap();
    store.insert(b"only-in-a");
    store.checkpoint().unwrap();
    drop(store);

    // Graft a's delta onto b's chain: the replay contract must refuse.
    std::fs::copy(delta_path(&base_a, 1), delta_path(&base_b, 1)).unwrap();
    match CheckpointedIndex::open(&base_b, OpenOptions::new()) {
        Err(PersistError::Corrupt { .. }) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn out_of_order_deltas_are_rejected() {
    let scratch = Scratch::new("out-of-order");
    let base = scratch.path("index.snap");
    build_index(1, &corpus(12)).save(&base).unwrap();

    let store = CheckpointedIndex::open(&base, OpenOptions::new()).unwrap();
    store.insert(b"one");
    store.checkpoint().unwrap();
    store.insert(b"two");
    store.checkpoint().unwrap();
    drop(store);

    // Swap delta-1 and delta-2: discovery finds both, replay refuses.
    let d1 = delta_path(&base, 1);
    let d2 = delta_path(&base, 2);
    let tmp = scratch.path("tmp");
    std::fs::rename(&d1, &tmp).unwrap();
    std::fs::rename(&d2, &d1).unwrap();
    std::fs::rename(&tmp, &d2).unwrap();
    match CheckpointedIndex::open(&base, OpenOptions::new()) {
        Err(PersistError::Corrupt { .. }) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }

    // A gap orphans the tail: with slot 1 missing, the remaining file
    // (the original delta-1 sitting at slot 2) is ignored entirely and
    // recovery lands on the bare base.
    std::fs::rename(&d1, &tmp).unwrap(); // removes the delta-2 content
    let recovered = CheckpointedIndex::open(&base, OpenOptions::new()).unwrap();
    assert!(find_chain(&base).is_empty());
    assert_eq!(recovered.epoch(), 12, "12 builds, no replayed ops");
    drop(recovered);

    // Restore the true delta-1 to slot 1: the one-link chain replays.
    std::fs::rename(&d2, &d1).unwrap();
    std::fs::remove_file(&tmp).unwrap();
    let recovered = CheckpointedIndex::open(&base, OpenOptions::new()).unwrap();
    assert_eq!(find_chain(&base).len(), 1);
    assert_eq!(recovered.epoch(), 13, "12 builds + 1 replayed insert");
}

#[test]
fn every_corruption_of_a_delta_file_is_rejected() {
    let scratch = Scratch::new("delta-corruption");
    let base = scratch.path("index.snap");
    let mut twin = build_index(1, &corpus(9));
    twin.save(&base).unwrap();

    let store = CheckpointedIndex::open(&base, OpenOptions::new()).unwrap();
    apply_to_store(&store, ROUND_ONE);
    store.checkpoint().unwrap();
    drop(store);
    apply_to_twin(&mut twin, ROUND_ONE);

    let path = delta_path(&base, 1);
    let pristine = std::fs::read(&path).unwrap();

    // The pristine chain replays.
    CheckpointedIndex::open(&base, OpenOptions::new()).unwrap();

    // Every truncation length fails loudly.
    for len in 0..pristine.len() {
        std::fs::write(&path, &pristine[..len]).unwrap();
        match CheckpointedIndex::open(&base, OpenOptions::new()) {
            Err(_) => {}
            Ok(_) => panic!("truncation to {len} bytes was accepted"),
        }
    }

    // Every single-byte flip fails loudly or, if it is genuinely
    // unreachable by any validator, at least never diverges silently.
    for i in 0..pristine.len() {
        let mut bytes = pristine.clone();
        bytes[i] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        match CheckpointedIndex::open(&base, OpenOptions::new()) {
            Err(_) => {}
            Ok(recovered) => {
                // CRC32 catches single-bit flips in sections; only
                // header/table bytes that round-trip to the same
                // meaning could land here — the state must still be
                // the pristine one.
                assert_equivalent(&recovered, &twin, "flip survived validation");
            }
        }
    }

    std::fs::write(&path, &pristine).unwrap();
    let recovered = CheckpointedIndex::open(&base, OpenOptions::new()).unwrap();
    assert_equivalent(&recovered, &twin, "restored pristine chain");
}

#[test]
fn a_full_snapshot_in_the_chain_position_is_rejected() {
    let scratch = Scratch::new("snapshot-as-delta");
    let base = scratch.path("index.snap");
    build_index(1, &corpus(9)).save(&base).unwrap();
    // A valid *snapshot* where a delta should be.
    std::fs::copy(&base, delta_path(&base, 1)).unwrap();
    match CheckpointedIndex::open(&base, OpenOptions::new()) {
        Err(PersistError::Corrupt { context }) => {
            assert!(context.contains("delta"), "context: {context}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn instant_open_flags_a_deep_lie_in_the_background() {
    let scratch = Scratch::new("instant-verify");
    let base = scratch.path("index.snap");
    build_index(1, &corpus(30)).save(&base).unwrap();

    // Eager open rejects a corrupted section outright…
    let pristine = std::fs::read(&base).unwrap();
    let mut bytes = pristine.clone();
    let n = bytes.len();
    bytes[n - 9] ^= 0xff; // deep inside the last section's payload
    std::fs::write(&base, &bytes).unwrap();
    assert!(CheckpointedIndex::open(&base, OpenOptions::new()).is_err());

    // …while an instant open may defer the rejection to the verifier.
    match CheckpointedIndex::open(&base, OpenOptions::new().instant(true)) {
        Err(_) => {} // the touched byte was in an eagerly read section
        Ok(store) => match store.wait_for_verification() {
            VerifyState::Failed { .. } => {}
            state => panic!("background verify missed the corruption: {state:?}"),
        },
    }

    std::fs::write(&base, &pristine).unwrap();
    let store = CheckpointedIndex::open(&base, OpenOptions::new().instant(true)).unwrap();
    assert_eq!(store.wait_for_verification(), VerifyState::Ok);
}

#[test]
fn v2_snapshots_open_through_the_rebuild_fallback() {
    let scratch = Scratch::new("v2-fallback");
    let base = scratch.path("index.snap");
    let v2: &[u8] = include_bytes!("../../online/tests/data/v2-owned.snap");
    std::fs::write(&base, v2).unwrap();
    assert_eq!(&v2[8..12], &2u32.to_le_bytes(), "fixture is format v2");

    let store = CheckpointedIndex::open(&base, OpenOptions::new().mmap(true)).unwrap();
    assert_eq!(store.verification(), VerifyState::Ok);
    let twin = OnlineIndex::load(&base).unwrap();
    assert_equivalent(&store, &twin, "v2 fallback");

    // And it checkpoints like any other base.
    store.insert(b"fresh");
    store.checkpoint().unwrap();
    drop(store);
    let recovered = CheckpointedIndex::open(&base, OpenOptions::new()).unwrap();
    assert!(!recovered.matches(b"fresh", 0).is_empty());
}
