//! Active-node sets: the incremental trie edit-distance DP.
//!
//! The *active nodes* of a string prefix `p` are the trie nodes `u` with
//! `ed(str(u), p) ≤ τ`, each carried with its exact distance. They obey the
//! edit-distance recurrence lifted to the trie:
//!
//! ```text
//! ed(str(u), p·ch) = min( ed(str(u), p) + 1,            // consume ch
//!                         ed(str(parent u), p·ch) + 1,  // consume label(u)
//!                         ed(str(parent u), p) + δ )    // match/substitute
//! ```
//!
//! Because DP values along an optimal alignment path never decrease, every
//! cell of value ≤ τ is derivable from cells of value ≤ τ — so the set for
//! `p·ch` is computed from the set for `p` alone, plus a relaxation pass
//! for chains of the middle rule (consuming several trie labels in a row).

use sj_common::hash::FxHashMap;

use crate::trie::{Trie, ROOT};

/// An active-node set: trie node id → exact edit distance (≤ τ).
#[derive(Debug, Clone, Default)]
pub struct ActiveSet {
    /// `(node, distance)` pairs sorted by node id; distances exact.
    entries: Vec<(u32, u8)>,
}

impl ActiveSet {
    /// The active nodes of the empty prefix: every node within depth τ
    /// (deleting all its labels is the only option).
    pub fn initial(trie: &Trie, tau: usize) -> Self {
        let mut entries = Vec::new();
        // BFS from the root, depth-bounded.
        let mut frontier = vec![ROOT];
        while let Some(node) = frontier.pop() {
            let depth = trie.node(node).depth;
            if depth as usize > tau {
                continue;
            }
            entries.push((node, depth as u8));
            frontier.extend_from_slice(&trie.node(node).children);
        }
        entries.sort_unstable_by_key(|&(n, _)| n);
        Self { entries }
    }

    /// The active nodes of `p·ch` given the active nodes of `p`.
    pub fn advance(&self, trie: &Trie, ch: u8, tau: usize) -> Self {
        let tau8 = tau as u8;
        let mut best: FxHashMap<u32, u8> = FxHashMap::default();
        let mut queue: Vec<u32> = Vec::new();

        let offer = |best: &mut FxHashMap<u32, u8>, queue: &mut Vec<u32>, node: u32, d: u8| {
            if d > tau8 {
                return;
            }
            match best.entry(node) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    if *e.get() > d {
                        *e.get_mut() = d;
                        queue.push(node); // re-relax children with the better value
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(d);
                    queue.push(node);
                }
            }
        };

        for &(u, d) in &self.entries {
            // Rule 1: consume ch on the string side.
            offer(&mut best, &mut queue, u, d.saturating_add(1));
            // Rule 3: match or substitute ch against each child label.
            for &w in &trie.node(u).children {
                let step = u8::from(trie.node(w).label != ch);
                offer(&mut best, &mut queue, w, d.saturating_add(step));
            }
        }
        // Rule 2 (relaxation): consuming trie labels after the last probe
        // character — children of any active node at +1, transitively.
        let mut i = 0;
        while i < queue.len() {
            let u = queue[i];
            i += 1;
            let d = best[&u];
            for &w in &trie.node(u).children {
                offer(&mut best, &mut queue, w, d.saturating_add(1));
            }
        }

        let mut entries: Vec<(u32, u8)> = best.into_iter().collect();
        entries.sort_unstable_by_key(|&(n, _)| n);
        Self { entries }
    }

    /// The `(node, distance)` entries, sorted by node id.
    pub fn entries(&self) -> &[(u32, u8)] {
        &self.entries
    }

    /// Appends an entry whose node id exceeds every present id (newly
    /// created trie nodes have monotonically increasing ids, so symmetric
    /// updates in Trie-Dynamic preserve sortedness for free).
    pub(crate) fn push_monotone(&mut self, node: u32, dist: u8) {
        debug_assert!(self.entries.last().is_none_or(|&(n, _)| n < node));
        self.entries.push((node, dist));
    }

    /// Number of active nodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no node is within τ.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The distance recorded for `node`, if active.
    pub fn distance_of(&self, node: u32) -> Option<u8> {
        self.entries
            .binary_search_by_key(&node, |&(n, _)| n)
            .ok()
            .map(|i| self.entries[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use editdist::edit_distance;
    use sj_common::StringCollection;

    /// Oracle: recompute the active set of `p` from scratch by walking the
    /// whole trie and comparing prefix strings.
    fn oracle(strings: &[&str], p: &[u8], tau: usize) -> Vec<(String, u8)> {
        // Enumerate all prefixes present in the trie.
        let mut prefixes = std::collections::BTreeSet::new();
        for s in strings {
            for k in 0..=s.len() {
                prefixes.insert(&s[..k]);
            }
        }
        let mut out: Vec<(String, u8)> = prefixes
            .into_iter()
            .filter_map(|pre| {
                let d = edit_distance(pre.as_bytes(), p);
                (d <= tau).then_some((pre.to_string(), d as u8))
            })
            .collect();
        out.sort();
        out
    }

    /// Walk the trie to map node ids back to prefix strings.
    fn materialize(trie: &Trie, set: &ActiveSet) -> Vec<(String, u8)> {
        fn path(trie: &Trie, mut node: u32) -> String {
            let mut bytes = Vec::new();
            while node != ROOT {
                bytes.push(trie.node(node).label);
                node = trie.node(node).parent;
            }
            bytes.reverse();
            String::from_utf8(bytes).unwrap()
        }
        let mut out: Vec<(String, u8)> = set
            .entries()
            .iter()
            .map(|&(n, d)| (path(trie, n), d))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn matches_bruteforce_on_probe_strings() {
        let strings = ["abcd", "abce", "axcd", "bcd", "zzzz", ""];
        let coll = StringCollection::from_strs(&strings);
        let trie = Trie::build(&coll);
        for probe in ["abcd", "abc", "zzz", "q", ""] {
            for tau in 0..=3usize {
                let mut set = ActiveSet::initial(&trie, tau);
                for &ch in probe.as_bytes() {
                    set = set.advance(&trie, ch, tau);
                }
                assert_eq!(
                    materialize(&trie, &set),
                    oracle(&strings, probe.as_bytes(), tau),
                    "probe={probe} tau={tau}"
                );
            }
        }
    }

    #[test]
    fn initial_set_is_depth_bounded() {
        let coll = StringCollection::from_strs(&["abc", "ab", "a"]);
        let trie = Trie::build(&coll);
        let set = ActiveSet::initial(&trie, 1);
        // root (d=0), "a" (d=1) only.
        assert_eq!(set.len(), 2);
        assert_eq!(set.distance_of(ROOT), Some(0));
    }

    #[test]
    fn tau_zero_tracks_exact_path() {
        let coll = StringCollection::from_strs(&["hello", "help"]);
        let trie = Trie::build(&coll);
        let mut set = ActiveSet::initial(&trie, 0);
        for &ch in b"hel" {
            set = set.advance(&trie, ch, 0);
        }
        // Exactly the "hel" node.
        assert_eq!(set.len(), 1);
        assert_eq!(set.entries()[0].1, 0);
        set = set.advance(&trie, b'z', 0);
        assert!(set.is_empty());
    }
}
