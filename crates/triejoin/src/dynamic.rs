//! Trie-Dynamic: incremental trie construction with symmetric active-set
//! maintenance (the third Trie-Join variant of Wang et al.).
//!
//! Instead of building the whole trie and traversing it, strings are
//! inserted one at a time. Every trie node carries its active-node set;
//! when a new node `w` is created, `A(w)` is derived from its parent's set
//! with one [`ActiveSet::advance`] step, and — by symmetry of edit
//! distance — `w` is appended to `A(u)` for every `u ∈ A(w)`, keeping all
//! older sets current as the trie grows. When a string's terminal node is
//! reached, the terminals inside its active set are exactly the earlier
//! strings within τ, so each pair is emitted exactly once with no
//! preorder bookkeeping.
//!
//! Time is comparable to Trie-Traverse; memory holds every node's set,
//! like Traverse. The variant's real appeal (and why the original paper
//! introduced it) is incrementality: strings can arrive in any order, and
//! results stream out as they arrive.

use sj_common::join::emit_pair;
use sj_common::{JoinOutput, JoinStats, StringCollection};

use crate::active::ActiveSet;
use crate::trie::Trie;

/// Runs the Trie-Dynamic self-join.
pub(crate) fn dynamic_self_join(collection: &StringCollection, tau: usize) -> JoinOutput {
    let started = std::time::Instant::now();
    let mut pairs = Vec::new();
    let mut stats = JoinStats {
        strings: collection.len() as u64,
        ..JoinStats::default()
    };

    let mut trie = Trie::empty();
    // A(v) for every live node; index = node id.
    let mut sets: Vec<ActiveSet> = vec![ActiveSet::initial(&trie, tau)];
    let mut created: Vec<u32> = Vec::new();

    for (id, s) in collection.iter() {
        created.clear();
        let terminal = trie.insert_path_observed(s, |node| created.push(node));

        // Initialize sets for the nodes this string added, in creation
        // (root-to-leaf) order. The whole path is already in the trie, so
        // `advance` sees every new node; only *pre-existing* nodes' sets
        // (ids below this batch) were computed before the path existed and
        // need the symmetric update — same-batch sets pick the new nodes
        // up through their own `advance`.
        let batch_start = created.first().copied().unwrap_or(u32::MAX);
        for &w in &created {
            stats.probes += 1;
            let parent = trie.node(w).parent;
            let label = trie.node(w).label;
            let set = sets[parent as usize].advance(&trie, label, tau);
            debug_assert_eq!(sets.len(), w as usize);
            for &(u, d) in set.entries() {
                if u < batch_start {
                    sets[u as usize].push_monotone(w, d);
                }
            }
            sets.push(set);
        }

        // Earlier strings within τ are the terminals inside A(terminal).
        let set = &sets[terminal as usize];
        stats.candidate_occurrences += set.len() as u64;
        for &(u, _d) in set.entries() {
            let theirs = &trie.node(u).terminals;
            if theirs.is_empty() {
                continue;
            }
            stats.candidate_pairs += 1;
            for &t in theirs {
                emit_pair(collection, t, id, &mut pairs);
                stats.results += 1;
            }
        }
        trie.add_terminal(terminal, id);
    }

    stats.index_bytes = trie.index_bytes();
    JoinOutput {
        pairs,
        stats,
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use editdist::NaiveJoin;
    use sj_common::SimilarityJoin;

    fn check(strings: &[&str], tau: usize) {
        let coll = StringCollection::from_strs(strings);
        let expected = NaiveJoin.self_join(&coll, tau).normalized_pairs();
        let out = dynamic_self_join(&coll, tau);
        assert_eq!(out.normalized_pairs(), expected, "tau={tau} {strings:?}");
        assert_eq!(out.pairs.len(), expected.len(), "duplicates emitted");
    }

    #[test]
    fn matches_oracle_on_table1() {
        let strings = [
            "avataresha",
            "caushik chakrabar",
            "kaushic chaduri",
            "kaushik chakrab",
            "kaushuk chadhui",
            "vankatesh",
        ];
        for tau in 0..=4 {
            check(&strings, tau);
        }
    }

    #[test]
    fn matches_oracle_on_prefix_heavy_corpus() {
        let strings = [
            "john smith",
            "john smyth",
            "john smithe",
            "johan smith",
            "jane smith",
            "",
            "j",
            "jo",
            "dup",
            "dup",
        ];
        for tau in 0..=3 {
            check(&strings, tau);
        }
    }

    #[test]
    fn symmetric_updates_reach_older_subtrees() {
        // "xabc" is inserted after "abc"-like strings; pairs must still be
        // found even though the older nodes' sets were computed first.
        let strings = ["abc", "abd", "xabc", "abcx", "aabc"];
        for tau in 1..=2 {
            check(&strings, tau);
        }
    }
}
