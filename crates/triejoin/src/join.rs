//! The Trie-Join self-join driver (Wang et al., PVLDB 2010).
//!
//! A preorder traversal maintains the active-node set of every node on the
//! current root-to-node path. When the traversal reaches a node where
//! strings end, every *already visited* active node with terminals yields
//! result pairs — by symmetry (`u` active for `v` ⟺ `v` active for `u`),
//! emitting toward earlier preorder ranks enumerates each pair exactly
//! once. There is no separate verification phase: active-node distances
//! are exact edit distances between full strings at terminal nodes.
//!
//! Two memory disciplines from the paper:
//!
//! * [`TrieVariant::Traverse`] stores the active set of every node for the
//!   whole run (simple, memory-hungry — the paper's Trie-Traverse);
//! * [`TrieVariant::PathStack`] keeps only the sets along the current DFS
//!   path (the paper's Trie-PathStack).
//!
//! Both produce identical results; benchmarks show the space/time trade.

use std::time::Instant;

use sj_common::join::emit_pair;
use sj_common::{JoinOutput, JoinStats, SimilarityJoin, StringCollection};

use crate::active::ActiveSet;
use crate::trie::{Trie, ROOT};

/// Which memory discipline the traversal uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrieVariant {
    /// Keep every node's active set (paper's Trie-Traverse).
    Traverse,
    /// Keep only the root-to-current-node path (paper's Trie-PathStack).
    #[default]
    PathStack,
    /// Incremental insertion with symmetric set maintenance (paper's
    /// Trie-Dynamic).
    Dynamic,
}

/// The Trie-Join algorithm.
///
/// ```
/// use triejoin::TrieJoin;
/// use sj_common::{SimilarityJoin, StringCollection};
///
/// let c = StringCollection::from_strs(&["vldb", "pvldb", "icde"]);
/// let out = TrieJoin::new().self_join(&c, 1);
/// assert_eq!(out.normalized_pairs(), vec![(0, 1)]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct TrieJoin {
    variant: TrieVariant,
}

impl TrieJoin {
    /// Trie-Join with the PathStack traversal (the paper's best variant).
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the traversal variant.
    pub fn with_variant(mut self, variant: TrieVariant) -> Self {
        self.variant = variant;
        self
    }

    /// The configured variant.
    pub fn variant(&self) -> TrieVariant {
        self.variant
    }
}

impl SimilarityJoin for TrieJoin {
    fn name(&self) -> &'static str {
        match self.variant {
            TrieVariant::Traverse => "trie-traverse",
            TrieVariant::PathStack => "trie-pathstack",
            TrieVariant::Dynamic => "trie-dynamic",
        }
    }

    fn self_join(&self, collection: &StringCollection, tau: usize) -> JoinOutput {
        if self.variant == TrieVariant::Dynamic {
            return crate::dynamic::dynamic_self_join(collection, tau);
        }
        let started = Instant::now();
        let mut pairs = Vec::new();
        let mut stats = JoinStats {
            strings: collection.len() as u64,
            ..JoinStats::default()
        };

        let trie = Trie::build(collection);
        stats.index_bytes = trie.index_bytes();
        let mut visit_rank: Vec<u32> = vec![u32::MAX; trie.len()];
        let mut next_rank: u32 = 0;

        // DFS frames: (node, index of the next child to descend into).
        let mut frames: Vec<(u32, usize)> = Vec::new();
        // PathStack: sets aligned with `frames`. Traverse: sets stored per
        // node (kept alive for the whole run).
        let mut path_sets: Vec<ActiveSet> = Vec::new();
        let mut stored_sets: Vec<Option<ActiveSet>> = match self.variant {
            TrieVariant::Traverse => vec![None; trie.len()],
            _ => Vec::new(),
        };

        let root_set = ActiveSet::initial(&trie, tau);
        let emit_at = |node: u32,
                       set: &ActiveSet,
                       visit_rank: &mut Vec<u32>,
                       next_rank: &mut u32,
                       pairs: &mut Vec<(u32, u32)>,
                       stats: &mut JoinStats| {
            let rank = *next_rank;
            visit_rank[node as usize] = rank;
            *next_rank += 1;
            let own = &trie.node(node).terminals;
            if own.is_empty() {
                return;
            }
            stats.candidate_occurrences += set.len() as u64;
            for &(u, _d) in set.entries() {
                let u_rank = visit_rank[u as usize];
                if u_rank > rank {
                    continue; // not yet visited; emitted from u's side later
                }
                let theirs = &trie.node(u).terminals;
                if theirs.is_empty() {
                    continue;
                }
                stats.candidate_pairs += 1;
                if u == node {
                    // Identical strings: all unordered pairs among them.
                    for (i, &a) in own.iter().enumerate() {
                        for &b in &own[i + 1..] {
                            emit_pair(collection, a, b, pairs);
                            stats.results += 1;
                        }
                    }
                } else {
                    for &a in theirs {
                        for &b in own {
                            emit_pair(collection, a, b, pairs);
                            stats.results += 1;
                        }
                    }
                }
            }
        };

        // Visit the root, then DFS.
        emit_at(
            ROOT,
            &root_set,
            &mut visit_rank,
            &mut next_rank,
            &mut pairs,
            &mut stats,
        );
        frames.push((ROOT, 0));
        match self.variant {
            TrieVariant::Traverse => stored_sets[ROOT as usize] = Some(root_set),
            _ => path_sets.push(root_set),
        }

        while let Some(&mut (node, ref mut next_child)) = frames.last_mut() {
            let children = &trie.node(node).children;
            if *next_child >= children.len() {
                frames.pop();
                if self.variant == TrieVariant::PathStack {
                    path_sets.pop();
                }
                continue;
            }
            let child = children[*next_child];
            *next_child += 1;

            let parent_set = match self.variant {
                TrieVariant::Traverse => stored_sets[node as usize]
                    .as_ref()
                    .expect("parent set stored before descending"),
                _ => path_sets.last().expect("path set present"),
            };
            stats.probes += 1;
            let child_set = parent_set.advance(&trie, trie.node(child).label, tau);
            if child_set.is_empty() {
                // No node is within τ of this prefix; no descendant prefix
                // can recover (distances only grow) — prune the subtree.
                let _ = child_set;
                continue;
            }
            emit_at(
                child,
                &child_set,
                &mut visit_rank,
                &mut next_rank,
                &mut pairs,
                &mut stats,
            );
            frames.push((child, 0));
            match self.variant {
                TrieVariant::Traverse => stored_sets[child as usize] = Some(child_set),
                _ => path_sets.push(child_set),
            }
        }

        JoinOutput {
            pairs,
            stats,
            elapsed: started.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1() -> StringCollection {
        StringCollection::from_strs(&[
            "avataresha",
            "caushik chakrabar",
            "kaushic chaduri",
            "kaushik chakrab",
            "kaushuk chadhui",
            "vankatesh",
        ])
    }

    #[test]
    fn finds_figure1_answer_both_variants() {
        for variant in [
            TrieVariant::Traverse,
            TrieVariant::PathStack,
            TrieVariant::Dynamic,
        ] {
            let out = TrieJoin::new()
                .with_variant(variant)
                .self_join(&table1(), 3);
            assert_eq!(out.normalized_pairs(), vec![(1, 3)], "{variant:?}");
        }
    }

    #[test]
    fn duplicates_and_prefix_pairs() {
        let c = StringCollection::from_strs(&["abc", "abc", "ab", "abcd"]);
        let out = TrieJoin::new().self_join(&c, 1);
        // ed(abc,abc)=0, ed(abc,ab)=1 (×2), ed(abc,abcd)=1 (×2),
        // ed(ab,abcd)=2 ✗.
        let mut expected = vec![(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)];
        expected.sort_unstable();
        assert_eq!(out.normalized_pairs(), expected);
    }

    #[test]
    fn subtree_pruning_keeps_results() {
        // A string far from everything else must not disturb the rest.
        let c = StringCollection::from_strs(&["aaaa", "aaab", "zzzzzzzzzz"]);
        let out = TrieJoin::new().self_join(&c, 1);
        assert_eq!(out.normalized_pairs(), vec![(0, 1)]);
    }

    #[test]
    fn empty_corpus_and_empty_strings() {
        let out = TrieJoin::new().self_join(&StringCollection::new(vec![]), 2);
        assert!(out.pairs.is_empty());
        let c = StringCollection::from_strs(&["", "", "a"]);
        let out = TrieJoin::new().self_join(&c, 1);
        // ("","")=0, ("","a")=1 twice.
        assert_eq!(out.normalized_pairs(), vec![(0, 1), (0, 2), (1, 2)]);
    }
}
