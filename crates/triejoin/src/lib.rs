//! **Trie-Join**: the trie-based baseline Pass-Join is evaluated against
//! (paper §6.3, Figure 15, Table 3).
//!
//! Reimplemented from Wang, Li, Feng — *"Trie-Join: Efficient Trie-based
//! String Similarity Joins with Edit-Distance Constraints"* (PVLDB 2010):
//! a byte [`trie`] shares prefixes across the corpus; an incremental
//! [`active`]-node DP carries, for every prefix, the set of trie nodes
//! within edit distance τ; and a preorder traversal emits result pairs at
//! terminal nodes ([`join`]). Efficient exactly when strings are short and
//! share many prefixes — and measurably not otherwise, which is the
//! comparison Figure 15 draws.
//!
//! ```
//! use triejoin::{TrieJoin, TrieVariant};
//! use sj_common::{SimilarityJoin, StringCollection};
//!
//! let c = StringCollection::from_strs(&["kaushic", "kaushik", "caushik"]);
//! let out = TrieJoin::new().self_join(&c, 1);
//! assert_eq!(out.normalized_pairs(), vec![(0, 1), (1, 2)]);
//! let out2 = TrieJoin::new().with_variant(TrieVariant::Traverse).self_join(&c, 1);
//! assert_eq!(out2.normalized_pairs(), out.normalized_pairs());
//! ```

pub mod active;
mod dynamic;
pub mod join;
pub mod trie;

pub use join::{TrieJoin, TrieVariant};
pub use trie::Trie;
