//! A byte trie over a string collection.
//!
//! Trie-Join's whole premise (Wang et al., PVLDB 2010) is that short
//! strings share prefixes: the trie stores each shared prefix once, and the
//! active-node computation is done per trie *node*, amortizing it across
//! all strings below that node. Terminal string ids live on their final
//! node (duplicates share one node).

use sj_common::{StringCollection, StringId};

/// One trie node. Children are kept sorted by label; the alphabet of the
/// evaluation corpora is small (≤ 40 symbols), so linear scans beat hash
/// maps here.
#[derive(Debug, Default)]
pub struct Node {
    /// Incoming edge label (unused for the root).
    pub label: u8,
    /// Parent node id (self-referential for the root).
    pub parent: u32,
    /// Depth = length of the prefix this node spells.
    pub depth: u32,
    /// Child node ids, sorted by label.
    pub children: Vec<u32>,
    /// Ids of the strings that end exactly here.
    pub terminals: Vec<StringId>,
}

/// A trie over an entire collection, nodes in one arena.
#[derive(Debug)]
pub struct Trie {
    nodes: Vec<Node>,
}

/// Id of the root node.
pub const ROOT: u32 = 0;

impl Trie {
    /// An empty trie (just the root), for incremental construction
    /// (Trie-Dynamic).
    pub fn empty() -> Self {
        Self {
            nodes: vec![Node::default()],
        }
    }

    /// Builds the trie; strings are inserted in collection (sorted) order,
    /// so terminal lists are sorted too.
    pub fn build(collection: &StringCollection) -> Self {
        let mut trie = Self::empty();
        for (id, s) in collection.iter() {
            let node = trie.insert_path(s);
            trie.nodes[node as usize].terminals.push(id);
        }
        trie
    }

    /// Inserts the path of `s`, invoking `on_new(node_id)` for every node
    /// created (in root-to-leaf order), and returns the terminal node.
    /// Used by Trie-Dynamic, which must initialize active sets for fresh
    /// nodes.
    pub fn insert_path_observed(&mut self, s: &[u8], mut on_new: impl FnMut(u32)) -> u32 {
        let mut at = ROOT;
        for &ch in s {
            at = match self.child_with_label(at, ch) {
                Some(c) => c,
                None => {
                    let id = self.push_child(at, ch);
                    on_new(id);
                    id
                }
            };
        }
        at
    }

    /// Registers string `id` as terminating at `node`.
    pub fn add_terminal(&mut self, node: u32, id: StringId) {
        self.nodes[node as usize].terminals.push(id);
    }

    fn push_child(&mut self, at: u32, ch: u8) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            label: ch,
            parent: at,
            depth: self.nodes[at as usize].depth + 1,
            children: Vec::new(),
            terminals: Vec::new(),
        });
        let slot = self.nodes[at as usize]
            .children
            .partition_point(|&c| self.nodes[c as usize].label < ch);
        self.nodes[at as usize].children.insert(slot, id);
        id
    }

    fn insert_path(&mut self, s: &[u8]) -> u32 {
        self.insert_path_observed(s, |_| {})
    }

    /// The child of `node` along `label`, if present.
    pub fn child_with_label(&self, node: u32, label: u8) -> Option<u32> {
        self.nodes[node as usize]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c as usize].label == label)
    }

    /// Borrowed node access.
    #[inline]
    pub fn node(&self, id: u32) -> &Node {
        &self.nodes[id as usize]
    }

    /// Number of nodes, including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the trie holds only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Estimated resident bytes, comparable with the other algorithms'
    /// index accounting (Table 3): a packed node layout (label, parent,
    /// depth, two vec headers) plus 4 bytes per child edge and terminal.
    pub fn index_bytes(&self) -> u64 {
        let edges: u64 = self.nodes.iter().map(|n| n.children.len() as u64).sum();
        let terminals: u64 = self.nodes.iter().map(|n| n.terminals.len() as u64).sum();
        self.nodes.len() as u64 * 24 + edges * 4 + terminals * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_prefixes() {
        let c = StringCollection::from_strs(&["abc", "abd", "ab", "xyz"]);
        let trie = Trie::build(&c);
        // Nodes: root, a, ab, abc, abd, x, xy, xyz = 8.
        assert_eq!(trie.len(), 8);
        let a = trie.child_with_label(ROOT, b'a').unwrap();
        let ab = trie.child_with_label(a, b'b').unwrap();
        assert_eq!(trie.node(ab).depth, 2);
        assert_eq!(trie.node(ab).terminals.len(), 1); // "ab"
        assert_eq!(trie.node(ab).children.len(), 2); // abc, abd
    }

    #[test]
    fn duplicates_share_a_terminal_node() {
        let c = StringCollection::from_strs(&["dup", "dup", "dup"]);
        let trie = Trie::build(&c);
        assert_eq!(trie.len(), 4); // root + d + du + dup
        let d = trie.child_with_label(ROOT, b'd').unwrap();
        let du = trie.child_with_label(d, b'u').unwrap();
        let dup = trie.child_with_label(du, b'p').unwrap();
        assert_eq!(trie.node(dup).terminals, vec![0, 1, 2]);
    }

    #[test]
    fn empty_string_terminates_at_root() {
        let c = StringCollection::from_strs(&["", "a"]);
        let trie = Trie::build(&c);
        assert_eq!(trie.node(ROOT).terminals, vec![0]);
    }

    #[test]
    fn children_sorted_by_label() {
        let c = StringCollection::from_strs(&["zb", "ab", "mb"]);
        let trie = Trie::build(&c);
        let labels: Vec<u8> = trie
            .node(ROOT)
            .children
            .iter()
            .map(|&c| trie.node(c).label)
            .collect();
        assert_eq!(labels, vec![b'a', b'm', b'z']);
    }

    #[test]
    fn index_bytes_positive_and_monotone() {
        let small = Trie::build(&StringCollection::from_strs(&["ab"]));
        let large = Trie::build(&StringCollection::from_strs(&["ab", "cdxy", "efoo", "ghi"]));
        assert!(small.index_bytes() > 0);
        assert!(large.index_bytes() > small.index_bytes());
    }
}
