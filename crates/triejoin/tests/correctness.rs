//! Both Trie-Join variants must produce exactly the ground-truth join.

use editdist::NaiveJoin;
use proptest::prelude::*;
use sj_common::{SimilarityJoin, StringCollection};
use triejoin::{TrieJoin, TrieVariant};

fn check(strings: &[Vec<u8>], tau: usize) {
    let coll = StringCollection::new(strings.to_vec());
    let expected = NaiveJoin.self_join(&coll, tau).normalized_pairs();
    for variant in [
        TrieVariant::Traverse,
        TrieVariant::PathStack,
        TrieVariant::Dynamic,
    ] {
        let out = TrieJoin::new().with_variant(variant).self_join(&coll, tau);
        assert_eq!(
            out.normalized_pairs(),
            expected,
            "{variant:?} tau={tau} corpus={:?}",
            strings
                .iter()
                .map(|s| String::from_utf8_lossy(s).into_owned())
                .collect::<Vec<_>>()
        );
        assert_eq!(out.normalized_pairs().len(), out.pairs.len());
    }
}

fn dense_corpus() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..12),
        0..20,
    )
}

fn wide_corpus() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(97u8..=122, 0..24), 0..14)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matches_ground_truth_dense(strings in dense_corpus(), tau in 0usize..4) {
        check(&strings, tau);
    }

    #[test]
    fn matches_ground_truth_wide(strings in wide_corpus(), tau in 0usize..5) {
        check(&strings, tau);
    }
}

#[test]
fn prefix_heavy_corpus() {
    // Trie-Join's favourable regime: heavy prefix sharing.
    let strings: Vec<Vec<u8>> = [
        "john smith",
        "john smyth",
        "john smithe",
        "johan smith",
        "john smit",
        "jane smith",
        "jane smyth",
        "john",
        "johnny smith",
    ]
    .iter()
    .map(|s| s.as_bytes().to_vec())
    .collect();
    for tau in 0..=3 {
        check(&strings, tau);
    }
}

#[test]
fn variants_agree_on_planted_corpus() {
    let mut strings: Vec<Vec<u8>> = Vec::new();
    for i in 0..60 {
        strings.push(format!("entity record {i:02}").into_bytes());
        if i % 3 == 0 {
            strings.push(format!("entity recrod {i:02}").into_bytes()); // transposed
        }
    }
    let coll = StringCollection::new(strings);
    for tau in 0..=3 {
        let a = TrieJoin::new()
            .with_variant(TrieVariant::Traverse)
            .self_join(&coll, tau);
        let b = TrieJoin::new()
            .with_variant(TrieVariant::PathStack)
            .self_join(&coll, tau);
        assert_eq!(a.normalized_pairs(), b.normalized_pairs());
        assert_eq!(a.stats.results, b.stats.results);
    }
}
