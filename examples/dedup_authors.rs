//! Near-duplicate detection and clustering on an author-name corpus — the
//! data-cleaning scenario that motivates the paper's introduction.
//!
//! Generates a synthetic DBLP-Author-like corpus with planted misspelled
//! duplicates and feeds it, one record at a time, through the streaming
//! [`DedupPipeline`]: each record is queried against everything seen so
//! far (Jaccard over positional bigrams), unioned with its matches, and
//! inserted — a single pass yields the duplicate clusters, no batch join
//! or separate union-find pass needed.
//!
//! ```sh
//! cargo run --release --example dedup_authors [n]
//! ```

use std::time::Instant;

use datagen::{DatasetKind, DatasetSpec};
use passjoin_setsim::{DedupPipeline, SetMetric, TokenMode};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(30_000);
    let threshold = 0.75;

    let spec = DatasetSpec::new(DatasetKind::Author, n).with_duplicate_rate(0.25);
    let strings = spec.generate();

    let mut pipeline = DedupPipeline::new(TokenMode::Grams { q: 2 }, SetMetric::Jaccard, threshold);
    let start = Instant::now();
    for record in &strings {
        pipeline.push(record);
    }
    let elapsed = start.elapsed();

    let stats = pipeline.stats();
    println!(
        "{} author strings, jaccard >= {threshold}: {} matched a prior record in {:?}",
        n,
        pipeline.matched_records(),
        elapsed
    );
    println!(
        "  {} candidates -> {} verifications -> {} matches",
        stats.candidates, stats.verifications, stats.segment_matches
    );

    let mut clusters = pipeline.clusters();
    clusters.sort_by_key(|c| std::cmp::Reverse(c.len()));
    println!(
        "{} clusters with more than one spelling; largest {}",
        clusters.len(),
        clusters.first().map_or(0, |c| c.len())
    );
    println!("\nsample clusters:");
    for cluster in clusters.iter().take(5) {
        println!("  ---");
        for &idx in cluster.iter().take(6) {
            println!("  {}", String::from_utf8_lossy(&strings[idx as usize]));
        }
    }
}
