//! Near-duplicate detection and clustering on an author-name corpus — the
//! data-cleaning scenario that motivates the paper's introduction.
//!
//! Generates a synthetic DBLP-Author-like corpus with planted misspelled
//! duplicates, joins it at τ=2, and clusters the results with a union-find
//! so each entity's spelling variants land in one group.
//!
//! ```sh
//! cargo run --release --example dedup_authors [n]
//! ```

use datagen::{DatasetKind, DatasetSpec};
use passjoin::PassJoin;
use sj_common::SimilarityJoin;

/// Minimal union-find over `0..n`.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        if self.parent[x as usize] != x {
            let root = self.find(self.parent[x as usize]);
            self.parent[x as usize] = root;
        }
        self.parent[x as usize]
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(30_000);
    let tau = 2;

    let spec = DatasetSpec::new(DatasetKind::Author, n).with_duplicate_rate(0.25);
    let strings = spec.generate();
    let collection = sj_common::StringCollection::new(strings.clone());

    let out = PassJoin::new().self_join(&collection, tau);
    println!(
        "{} author strings, tau={tau}: {} similar pairs in {:?}",
        n,
        out.pairs.len(),
        out.elapsed
    );

    // Cluster pairs into entities.
    let mut uf = UnionFind::new(n);
    for &(a, b) in &out.pairs {
        uf.union(a, b);
    }
    let mut clusters: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    for i in 0..n as u32 {
        clusters.entry(uf.find(i)).or_default().push(i);
    }
    let mut multi: Vec<&Vec<u32>> = clusters.values().filter(|c| c.len() > 1).collect();
    multi.sort_by_key(|c| std::cmp::Reverse(c.len()));

    println!(
        "{} clusters with more than one spelling; largest {}",
        multi.len(),
        multi.first().map_or(0, |c| c.len())
    );
    println!("\nsample clusters:");
    for cluster in multi.iter().take(5) {
        println!("  ---");
        for &idx in cluster.iter().take(6) {
            println!("  {}", String::from_utf8_lossy(&strings[idx as usize]));
        }
    }
}
