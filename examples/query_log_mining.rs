//! Mining near-duplicate queries from a search log — the paper's
//! medium-length workload (AOL Query Log), with a τ sensitivity sweep and
//! the selection/verification statistics the paper's Figures 12–14 study.
//!
//! ```sh
//! cargo run --release --example query_log_mining [n]
//! ```

use datagen::{DatasetKind, DatasetSpec};
use passjoin::{PassJoin, Selection, Verification};
use sj_common::SimilarityJoin;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(15_000);

    let collection = DatasetSpec::new(DatasetKind::QueryLog, n).collection();
    println!(
        "query log: {} queries, avg length {:.1}\n",
        collection.len(),
        collection.avg_len()
    );

    println!("tau sensitivity (multi-match + share-prefix, the paper's config):");
    for tau in [2usize, 4, 6, 8] {
        let out = PassJoin::new().self_join(&collection, tau);
        println!(
            "  tau={tau}: {:>8} similar pairs, {:>9} candidates, {:>7.3}s",
            out.stats.results,
            out.stats.candidate_occurrences,
            out.elapsed.as_secs_f64()
        );
    }

    // How much the multi-match selector saves over the naive one (Fig 12).
    println!("\nselector comparison at tau=6:");
    for selection in Selection::all() {
        let out = PassJoin::new()
            .with_selection(selection)
            .self_join(&collection, 6);
        println!(
            "  {:<12} selected {:>10} substrings, {:>7.3}s",
            selection.name(),
            out.stats.selected_substrings,
            out.elapsed.as_secs_f64()
        );
    }

    // How much the verification cascade saves (Fig 14).
    println!("\nverifier comparison at tau=6:");
    for verification in Verification::figure14() {
        let out = PassJoin::new()
            .with_verification(verification)
            .self_join(&collection, 6);
        println!(
            "  {:<12} {:>7.3}s ({} verifications)",
            verification.name(),
            out.elapsed.as_secs_f64(),
            out.stats.verifications
        );
    }
}
