//! Quickstart: find all similar string pairs in a small collection.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use passjoin::PassJoin;
use sj_common::{SimilarityJoin, StringCollection};

fn main() {
    // The paper's running example (Table 1).
    let strings = [
        "avataresha",
        "caushik chakrabar",
        "kaushic chaduri",
        "kaushik chakrab",
        "kaushuk chadhui",
        "vankatesh",
    ];
    let collection = StringCollection::from_strs(&strings);

    let tau = 3;
    let out = PassJoin::new().self_join(&collection, tau);

    println!("similar pairs at edit distance <= {tau}:");
    for (a, b) in out.normalized_pairs() {
        println!("  {:?} ~ {:?}", strings[a as usize], strings[b as usize]);
    }
    println!();
    println!("work done: {}", out.stats);
    println!("elapsed:   {:?}", out.elapsed);
}
