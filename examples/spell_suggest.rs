//! Spell suggestion with a prebuilt similarity-search index — the
//! "approximate string searching" companion problem from the paper's
//! related work, served by the same partition machinery.
//!
//! Builds a dictionary index once, then answers point queries: all
//! dictionary words within τ of each misspelling, ranked by distance.
//!
//! ```sh
//! cargo run --release --example spell_suggest
//! ```

use passjoin::SearchIndex;
use sj_common::StringCollection;

fn main() {
    let dictionary: Vec<&str> = vec![
        "similarity",
        "similarly",
        "simulation",
        "partition",
        "petition",
        "position",
        "permutation",
        "verification",
        "verifications",
        "notification",
        "segment",
        "argument",
        "alignment",
        "assignment",
        "threshold",
        "thresholds",
        "inverted",
        "inverse",
        "index",
        "indices",
    ];
    let dict = StringCollection::from_strs(&dictionary);
    let tau = 2;
    let index = SearchIndex::build(&dict, tau);
    println!(
        "dictionary of {} words indexed ({} bytes) at tau={tau}\n",
        dictionary.len(),
        index.index_bytes()
    );

    let mut searcher = index.searcher();
    let mut hits = Vec::new();
    for query in [
        "similarty",
        "partitoin",
        "verfication",
        "treshold",
        "alinement",
        "zzzzz",
    ] {
        hits.clear();
        searcher.query_into(query.as_bytes(), &mut hits);
        hits.sort_by_key(|&(pos, d)| (d, pos));
        let suggestions: Vec<String> = hits
            .iter()
            .map(|&(pos, d)| format!("{} (d={d})", dictionary[pos as usize]))
            .collect();
        println!(
            "{query:<14} -> {}",
            if suggestions.is_empty() {
                "no suggestion".to_string()
            } else {
                suggestions.join(", ")
            }
        );
    }
}
