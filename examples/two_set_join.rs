//! R×S join: match a dirty list of names against a clean reference list —
//! the record-linkage use of a similarity join (paper §3.2's two-set case).
//!
//! ```sh
//! cargo run --release --example two_set_join
//! ```

use datagen::mutate;
use passjoin::PassJoin;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sj_common::StringCollection;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);

    // A clean reference list...
    let reference: Vec<&str> = vec![
        "guoliang li",
        "dong deng",
        "jiannan wang",
        "jianhua feng",
        "chuan xiao",
        "wei wang",
        "xuemin lin",
        "divesh srivastava",
        "nick koudas",
        "surajit chaudhuri",
    ];
    // ...and a dirty feed with typos (up to 2 edits) plus unrelated noise.
    let mut dirty: Vec<Vec<u8>> = Vec::new();
    for name in &reference {
        for _ in 0..3 {
            let edits = rng.gen_range(0..=2);
            dirty.push(mutate(name.as_bytes(), edits, &mut rng));
        }
    }
    dirty.push(b"completely unrelated entry".to_vec());
    dirty.push(b"another stray string".to_vec());

    let r = StringCollection::new(dirty.clone());
    let s = StringCollection::from_strs(&reference);

    let tau = 2;
    let out = PassJoin::new().rs_join(&r, &s, tau);

    println!(
        "matched {} of {} dirty entries against the reference (tau={tau}):",
        out.pairs.len(),
        dirty.len()
    );
    let mut pairs = out.pairs.clone();
    pairs.sort_unstable_by_key(|&(_, sref)| sref);
    for (dirty_idx, ref_idx) in pairs.iter().take(12) {
        println!(
            "  {:<28} -> {}",
            String::from_utf8_lossy(&dirty[*dirty_idx as usize]),
            reference[*ref_idx as usize]
        );
    }
    println!("  ... ({} matches total)", out.pairs.len());
}
