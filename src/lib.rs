//! Umbrella crate for the Pass-Join reproduction: examples live in
//! `examples/`, cross-crate integration tests in `tests/`.

pub use datagen;
pub use editdist;
pub use edjoin;
pub use passjoin;
pub use passjoin_obs;
pub use passjoin_online;
pub use passjoin_persist;
pub use passjoin_serve;
pub use passjoin_setsim;
pub use sj_common;
pub use triejoin;
