//! Cross-crate integration: every join algorithm in the workspace must
//! produce identical results on every synthetic corpus kind, across
//! thresholds — Pass-Join (all configurations), ED-Join, All-Pairs-Ed, and
//! both Trie-Join variants, anchored by the naive oracle.

use datagen::{DatasetKind, DatasetSpec};
use editdist::NaiveJoin;
use edjoin::EdJoin;
use passjoin::{PassJoin, Selection, Verification};
use sj_common::{SimilarityJoin, StringCollection};
use triejoin::{TrieJoin, TrieVariant};

fn roster() -> Vec<Box<dyn SimilarityJoin>> {
    vec![
        Box::new(PassJoin::new()),
        Box::new(
            PassJoin::new()
                .with_selection(Selection::Length)
                .with_verification(Verification::Banded),
        ),
        Box::new(
            PassJoin::new()
                .with_selection(Selection::Position)
                .with_verification(Verification::Extension {
                    share_prefix: false,
                }),
        ),
        Box::new(EdJoin::new(2)),
        Box::new(EdJoin::new(3)),
        Box::new(EdJoin::all_pairs_ed(2)),
        Box::new(TrieJoin::new().with_variant(TrieVariant::Traverse)),
        Box::new(TrieJoin::new().with_variant(TrieVariant::PathStack)),
    ]
}

fn check_corpus(kind: DatasetKind, n: usize, taus: &[usize]) {
    let coll = DatasetSpec::new(kind, n).with_seed(1234).collection();
    for &tau in taus {
        let expected = NaiveJoin.self_join(&coll, tau);
        let expected_pairs = expected.normalized_pairs();
        for join in roster() {
            let out = join.self_join(&coll, tau);
            assert_eq!(
                out.normalized_pairs(),
                expected_pairs,
                "{} disagrees with ground truth on {} at tau={tau}",
                join.name(),
                kind.name()
            );
            assert_eq!(
                out.pairs.len(),
                expected_pairs.len(),
                "{} emitted duplicates on {} at tau={tau}",
                join.name(),
                kind.name()
            );
            assert_eq!(out.stats.results as usize, out.pairs.len());
        }
    }
}

#[test]
fn author_corpus_all_algorithms_agree() {
    check_corpus(DatasetKind::Author, 600, &[0, 1, 2, 3]);
}

#[test]
fn querylog_corpus_all_algorithms_agree() {
    check_corpus(DatasetKind::QueryLog, 250, &[2, 4, 6]);
}

#[test]
fn authortitle_corpus_all_algorithms_agree() {
    check_corpus(DatasetKind::AuthorTitle, 150, &[4, 8]);
}

#[test]
fn result_counts_are_tau_monotone() {
    // Raising τ can only add results — across all algorithms.
    let coll = DatasetSpec::new(DatasetKind::Author, 500).collection();
    for join in roster() {
        let mut prev = 0u64;
        for tau in 0..=3 {
            let results = join.self_join(&coll, tau).stats.results;
            assert!(
                results >= prev,
                "{}: results dropped from {prev} to {results} at tau={tau}",
                join.name()
            );
            prev = results;
        }
    }
}

#[test]
fn every_result_pair_is_actually_similar() {
    // Spot-check correctness (no false positives) independently of the
    // oracle: recompute the distance of every reported pair.
    let strings = DatasetSpec::new(DatasetKind::Author, 800).generate();
    let coll = StringCollection::new(strings.clone());
    let tau = 2;
    let out = PassJoin::new().self_join(&coll, tau);
    assert!(out.stats.results > 0, "corpus should contain similar pairs");
    for &(a, b) in &out.pairs {
        let d = editdist::edit_distance(&strings[a as usize], &strings[b as usize]);
        assert!(d <= tau, "reported pair has distance {d} > {tau}");
        assert_ne!(a, b, "self-pair reported");
    }
}
