//! Integration tests for the beyond-the-paper features: the parallel
//! driver, the top-k join, and the similarity-search index — each checked
//! against an independent oracle on realistic corpora.

use datagen::{DatasetKind, DatasetSpec};
use passjoin::{PassJoin, SearchIndex};
use sj_common::{SimilarityJoin, StringCollection};

#[test]
fn parallel_join_matches_sequential_on_all_corpora() {
    for kind in DatasetKind::all() {
        let coll = DatasetSpec::new(kind, 2_000).collection();
        let tau = kind.figure12_taus()[0];
        let seq = PassJoin::new().self_join(&coll, tau);
        let par = PassJoin::new().par_self_join(&coll, tau, 4);
        assert_eq!(
            par.normalized_pairs(),
            seq.normalized_pairs(),
            "{} tau={tau}",
            kind.name()
        );
        assert_eq!(par.stats.results, seq.stats.results);
        // The parallel run builds the whole index up front, so its peak is
        // at least the sequential sliding window's.
        assert!(par.stats.index_bytes >= seq.stats.index_bytes);
    }
}

#[test]
fn topk_distances_match_threshold_join() {
    let coll = DatasetSpec::new(DatasetKind::Author, 1_200).collection();
    let k = 500;
    let top = PassJoin::new().topk_self_join(&coll, k);
    assert_eq!(top.len(), k);
    // Distances ascend.
    for w in top.windows(2) {
        assert!(w[0].1 <= w[1].1);
    }
    // Cross-check: every pair within the k-th distance minus one must be
    // in the top-k (they all rank strictly better).
    let kth = top.last().unwrap().1;
    if kth > 0 {
        let within = PassJoin::new().self_join_distances(&coll, kth - 1);
        assert!(
            within.len() <= k,
            "more pairs at distance <= {} than k={k}",
            kth - 1
        );
        let top_set: std::collections::HashSet<(u32, u32)> = top.iter().map(|&(p, _)| p).collect();
        for (pair, _) in within {
            assert!(top_set.contains(&pair), "missing better pair {pair:?}");
        }
    }
}

#[test]
fn search_index_agrees_with_rs_join() {
    // Querying every probe string against the dictionary must equal an
    // R×S join of probes × dictionary.
    let dict_strings = DatasetSpec::new(DatasetKind::Author, 800).generate();
    let probe_strings = DatasetSpec::new(DatasetKind::Author, 100)
        .with_seed(99)
        .generate();
    let dict = StringCollection::new(dict_strings);
    let probes = StringCollection::new(probe_strings.clone());
    let tau = 2;

    let mut expected: Vec<(u32, u32)> = PassJoin::new().rs_join(&probes, &dict, tau).pairs;
    expected.sort_unstable();

    let index = SearchIndex::build(&dict, tau);
    let mut searcher = index.searcher();
    let mut got: Vec<(u32, u32)> = Vec::new();
    let mut hits = Vec::new();
    for (qi, q) in probe_strings.iter().enumerate() {
        hits.clear();
        searcher.query_into(q, &mut hits);
        for &(dict_pos, _) in &hits {
            got.push((qi as u32, dict_pos));
        }
    }
    got.sort_unstable();
    assert_eq!(got, expected);
}

#[test]
fn search_index_exact_distances_on_sample() {
    let dict_strings = DatasetSpec::new(DatasetKind::QueryLog, 300).generate();
    let dict = StringCollection::new(dict_strings.clone());
    let index = SearchIndex::build(&dict, 4);
    // Query with mutated copies of dictionary entries.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(5);
    for s in dict_strings.iter().take(40) {
        let q = datagen::mutate(s, 2, &mut rng);
        for (pos, d) in index.query(&q) {
            assert_eq!(
                d,
                editdist::edit_distance(&dict_strings[pos as usize], &q),
                "inexact distance reported"
            );
            assert!(d <= 4);
        }
    }
}
