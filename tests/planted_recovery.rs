//! Recall guarantees end-to-end: strings planted within τ edits of a seed
//! must always be paired with it, across corpus kinds and algorithms; and
//! the R×S driver must agree with the self-join driver.

use datagen::{mutate, DatasetKind, DatasetSpec};
use edjoin::EdJoin;
use passjoin::PassJoin;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sj_common::{SimilarityJoin, StringCollection};
use triejoin::TrieJoin;

/// Builds a corpus of distinct seeds plus exactly one planted mutation per
/// seed; returns (strings, planted pairs as input positions).
fn planted_corpus(kind: DatasetKind, seeds: usize, tau: usize) -> (Vec<Vec<u8>>, Vec<(u32, u32)>) {
    let base = DatasetSpec::new(kind, seeds)
        .with_duplicate_rate(0.0)
        .generate();
    let mut rng = StdRng::seed_from_u64(777);
    let mut strings = Vec::with_capacity(seeds * 2);
    let mut planted = Vec::new();
    for s in base {
        let idx = strings.len() as u32;
        let edits = rng.gen_range(0..=tau);
        let m = mutate(&s, edits, &mut rng);
        strings.push(s);
        strings.push(m);
        planted.push((idx, idx + 1));
    }
    (strings, planted)
}

fn assert_recovers(join: &dyn SimilarityJoin, kind: DatasetKind, tau: usize) {
    let (strings, planted) = planted_corpus(kind, 200, tau);
    let coll = StringCollection::new(strings);
    let found: std::collections::HashSet<(u32, u32)> = join
        .self_join(&coll, tau)
        .normalized_pairs()
        .into_iter()
        .collect();
    for pair in planted {
        assert!(
            found.contains(&pair),
            "{} on {} at tau={tau} missed planted pair {pair:?}",
            join.name(),
            kind.name()
        );
    }
}

#[test]
fn passjoin_recovers_all_planted_pairs() {
    for kind in DatasetKind::all() {
        for tau in [1usize, 3] {
            assert_recovers(&PassJoin::new(), kind, tau);
        }
    }
}

#[test]
fn baselines_recover_all_planted_pairs() {
    assert_recovers(&EdJoin::new(2), DatasetKind::Author, 2);
    assert_recovers(&EdJoin::new(3), DatasetKind::QueryLog, 3);
    assert_recovers(&TrieJoin::new(), DatasetKind::Author, 2);
}

#[test]
fn rs_join_agrees_with_self_join_on_split_corpus() {
    // Split one corpus in half; (r, s) pairs across the halves found by
    // rs_join must equal the cross-half subset of the self-join.
    let strings = DatasetSpec::new(DatasetKind::Author, 600).generate();
    let mid = strings.len() / 2;
    let (left, right) = strings.split_at(mid);
    let tau = 2;

    let whole = StringCollection::new(strings.clone());
    let cross_expected: std::collections::BTreeSet<(u32, u32)> = PassJoin::new()
        .self_join(&whole, tau)
        .pairs
        .iter()
        .filter_map(|&(a, b)| {
            let (a, b) = (a.min(b), a.max(b));
            // keep pairs with one side in each half, reindexed
            (a < mid as u32 && b >= mid as u32).then(|| (a, b - mid as u32))
        })
        .collect();

    let r = StringCollection::new(left.to_vec());
    let s = StringCollection::new(right.to_vec());
    let cross_got: std::collections::BTreeSet<(u32, u32)> = PassJoin::new()
        .rs_join(&r, &s, tau)
        .pairs
        .into_iter()
        .collect();

    assert_eq!(cross_got, cross_expected);
}

#[test]
fn rs_join_with_empty_side() {
    let r = StringCollection::from_strs(&["abc", "def"]);
    let empty = StringCollection::new(vec![]);
    assert!(PassJoin::new().rs_join(&r, &empty, 2).pairs.is_empty());
    assert!(PassJoin::new().rs_join(&empty, &r, 2).pairs.is_empty());
}
