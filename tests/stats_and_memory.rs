//! Integration checks on the observability surface: statistics invariants,
//! the Table 3 index-size ordering, and the Figure 12 selector ordering —
//! the quantitative claims the paper's evaluation rests on.

use datagen::{DatasetKind, DatasetSpec};
use edjoin::EdJoin;
use passjoin::{PassJoin, Selection};
use sj_common::{SimilarityJoin, StringCollection};
use triejoin::TrieJoin;

fn corpus(kind: DatasetKind, n: usize) -> StringCollection {
    DatasetSpec::new(kind, n).collection()
}

#[test]
fn selector_counts_are_ordered_like_figure12() {
    // |W_m| ≤ |W_p| ≤ |W_f| ≤ |W_ℓ| must hold on real workloads, not just
    // in the unit geometry tests.
    for kind in DatasetKind::all() {
        let c = corpus(kind, 400);
        let tau = kind.figure12_taus()[0];
        let counts: Vec<u64> = Selection::all()
            .iter()
            .map(|&sel| {
                PassJoin::new()
                    .with_selection(sel)
                    .self_join(&c, tau)
                    .stats
                    .selected_substrings
            })
            .collect();
        // Selection::all() order: Length, Shift, Position, MultiMatch.
        assert!(counts[0] >= counts[1], "{}: length < shift", kind.name());
        assert!(counts[1] >= counts[2], "{}: shift < position", kind.name());
        assert!(
            counts[2] >= counts[3],
            "{}: position < multi-match",
            kind.name()
        );
        assert!(counts[3] > 0);
    }
}

#[test]
fn index_sizes_are_ordered_like_table3() {
    // Pass-Join's sliding segment index must be far smaller than both
    // baselines' indices, on every corpus kind.
    for kind in DatasetKind::all() {
        let c = corpus(kind, 2_000);
        let tau = 3;
        let pass = PassJoin::new().self_join(&c, tau).stats.index_bytes;
        let ed = EdJoin::new(3).self_join(&c, tau).stats.index_bytes;
        let trie = TrieJoin::new().self_join(&c, tau).stats.index_bytes;
        assert!(
            pass * 2 < ed,
            "{}: pass-join index {pass}B not clearly below ed-join {ed}B",
            kind.name()
        );
        assert!(
            pass * 2 < trie,
            "{}: pass-join index {pass}B not clearly below trie-join {trie}B",
            kind.name()
        );
    }
}

#[test]
fn candidate_counts_shrink_with_better_selectors() {
    let c = corpus(DatasetKind::Author, 2_000);
    let loose = PassJoin::new()
        .with_selection(Selection::Length)
        .self_join(&c, 2);
    let tight = PassJoin::new()
        .with_selection(Selection::MultiMatch)
        .self_join(&c, 2);
    assert!(tight.stats.candidate_occurrences <= loose.stats.candidate_occurrences);
    assert_eq!(tight.normalized_pairs(), loose.normalized_pairs());
}

#[test]
fn join_stats_populated_for_all_algorithms() {
    let c = corpus(DatasetKind::Author, 1_000);
    let algos: Vec<Box<dyn SimilarityJoin>> = vec![
        Box::new(PassJoin::new()),
        Box::new(EdJoin::new(2)),
        Box::new(TrieJoin::new()),
    ];
    for join in algos {
        let out = join.self_join(&c, 2);
        assert_eq!(out.stats.strings, 1_000, "{}", join.name());
        assert!(out.stats.index_bytes > 0, "{}", join.name());
        assert!(out.stats.results > 0, "{}", join.name());
        assert!(out.elapsed.as_nanos() > 0, "{}", join.name());
    }
}

#[test]
fn elapsed_time_is_self_reported() {
    let c = corpus(DatasetKind::QueryLog, 500);
    let out = PassJoin::new().self_join(&c, 4);
    // Sanity: the driver fills `elapsed` and it is commensurate with an
    // actual run (sub-minute at this scale).
    assert!(out.elapsed.as_secs() < 60);
}
